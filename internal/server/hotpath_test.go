package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppatc/internal/obs/flight"
)

func TestShardedLRURoundsAndSpreads(t *testing.T) {
	if got := NewShardedLRU(64, 5).Shards(); got != 8 {
		t.Errorf("5 shards should round up to 8, got %d", got)
	}
	if got := NewLRU(8).Shards(); got != 1 {
		t.Errorf("NewLRU must stay single-shard, got %d", got)
	}
	if got := NewShardedLRU(64, 0).Shards(); got != 1 {
		t.Errorf("0 shards should clamp to 1, got %d", got)
	}

	// Per-shard capacity 64 with 64 distinct keys: no shard can overflow
	// regardless of hash distribution, so every key must survive.
	c := NewShardedLRU(512, 8)
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)})
	}
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want 64", c.Len())
	}
	for i := 0; i < 64; i++ {
		v, ok := c.Get(fmt.Sprintf("key-%d", i))
		if !ok || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("key-%d: got %v, %v", i, v, ok)
		}
	}
}

func TestShardedLRUEvictsPerShard(t *testing.T) {
	// Per-shard capacity 1: two keys landing on the same shard evict each
	// other; keys on different shards coexist.
	c := NewShardedLRU(8, 8)
	anchor := "anchor"
	c.Put(anchor, []byte("a"))
	var collider, other string
	for i := 0; i < 1000 && (collider == "" || other == ""); i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.shard(k) == c.shard(anchor) {
			if collider == "" {
				collider = k
			}
		} else if other == "" {
			other = k
		}
	}
	if collider == "" || other == "" {
		t.Fatal("could not find colliding and non-colliding probe keys")
	}
	c.Put(other, []byte("o"))
	if _, ok := c.Get(anchor); !ok {
		t.Error("different-shard Put must not evict anchor")
	}
	c.Put(collider, []byte("c"))
	if _, ok := c.Get(anchor); ok {
		t.Error("same-shard Put at capacity 1 must evict anchor")
	}
	if _, ok := c.Get(other); !ok {
		t.Error("other shard's entry must survive")
	}
}

// TestLRUPutCopies pins the aliasing fix: the cache owns its bytes, so a
// caller scribbling over the slice it passed to Put (e.g. a pooled
// encode buffer being reused) must not corrupt the cached entry.
func TestLRUPutCopies(t *testing.T) {
	c := NewLRU(4)
	src := []byte("hello world")
	stored := c.Put("k", src)
	src[0] = 'X'
	if got, ok := c.Get("k"); !ok || string(got) != "hello world" {
		t.Fatalf("cached entry corrupted by caller mutation: %q, %v", got, ok)
	}
	if string(stored) != "hello world" {
		t.Fatalf("Put's returned slice aliases the caller's: %q", stored)
	}
	// Overwriting an existing key copies too.
	src2 := []byte("second")
	c.Put("k", src2)
	src2[0] = 'Z'
	if got, _ := c.Get("k"); string(got) != "second" {
		t.Fatalf("overwritten entry corrupted by caller mutation: %q", got)
	}
}

func TestLRUGetAllocFree(t *testing.T) {
	c := NewShardedLRU(64, 8)
	c.Put("k", []byte("v"))
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get("k"); !ok {
			t.Error("unexpected miss")
		}
	})
	if allocs != 0 {
		t.Errorf("Get allocates %.1f times per call, want 0", allocs)
	}
}

func TestShardedLRUConcurrent(t *testing.T) {
	c := NewShardedLRU(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%64)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("got %q for key %q", v, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFlightGroupLeaderCancel pins the detachment fix: a leader whose
// context dies mid-computation must get its context error back promptly
// (previously it ran fn inline and blocked until fn returned), while the
// computation finishes on its own and delivers the result to waiters.
func TestFlightGroupLeaderCancel(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	leaderErr := make(chan error, 1)
	go func() {
		_, _, _, err := g.Do(ctx, "k", func() ([]byte, flight.Breakdown, error) {
			close(started)
			<-release
			return []byte("result"), flight.Breakdown{}, nil
		})
		leaderErr <- err
	}()
	<-started

	type waitResult struct {
		val    []byte
		shared bool
		err    error
	}
	waiter := make(chan waitResult, 1)
	go func() {
		v, _, sh, err := g.Do(context.Background(), "k", func() ([]byte, flight.Breakdown, error) {
			return nil, flight.Breakdown{}, errors.New("waiter must not start its own computation")
		})
		waiter <- waitResult{v, sh, err}
	}()

	time.Sleep(20 * time.Millisecond) // let the waiter join the in-flight call
	cancel()
	select {
	case err := <-leaderErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled leader stayed blocked on the computation")
	}

	close(release)
	select {
	case res := <-waiter:
		if res.err != nil || string(res.val) != "result" || !res.shared {
			t.Fatalf("waiter got (%q, shared=%v, err=%v), want the leader's result", res.val, res.shared, res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never received the detached computation's result")
	}
}

// TestCacheHitAllocBudget guards the hot path against alloc regressions.
// The pre-optimization baseline was ~700 allocs per cache-hit request
// (dominated by rebuilding the embench workload suite per lookup); the
// budget below is a generous multiple of the current count (~45,
// including per-run request and recorder construction) while still
// far below 70% of the baseline, so the ≥30% reduction claim stays
// machine-checked.
func TestCacheHitAllocBudget(t *testing.T) {
	srv := New(quietConfig())
	defer srv.Close()
	h := srv.Handler()
	body := `{"system":"si","workload":"crc32","grid":"US"}`

	warm := httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm request failed: %d %s", rec.Code, rec.Body.String())
	}

	hit := func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "HIT" {
			t.Errorf("not a cache hit: %d %q", w.Code, w.Header().Get("X-Cache"))
		}
	}

	// The flight recorder is always on, so this budget covers the full
	// attribution + recording path.
	allocs := testing.AllocsPerRun(50, hit)
	const budget = 200
	if allocs > budget {
		t.Errorf("cache-hit request allocates %.0f times, budget %d (baseline ~700)", allocs, budget)
	}

	// A live stream subscriber must not add per-request allocations:
	// publishing an event into the hub's buffered channel is alloc-free.
	events, cancel := srv.Recorder().Hub().Subscribe(4096)
	defer cancel()
	withSub := testing.AllocsPerRun(50, hit)
	if withSub > allocs+1 {
		t.Errorf("cache-hit allocates %.0f times with a stream subscriber vs %.0f without", withSub, allocs)
	}
	if len(events) == 0 {
		t.Error("stream subscriber received no events")
	}
}

// BenchmarkEvaluateCacheHit is the repeatable hot-path measurement
// behind BENCH_4.json:
//
//	go test ./internal/server/ -run xxx -bench EvaluateCacheHit -benchmem
func BenchmarkEvaluateCacheHit(b *testing.B) {
	srv := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 32,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	defer srv.Close()
	h := srv.Handler()
	body := `{"system":"si","workload":"crc32","grid":"US"}`
	warm := httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm request failed: %d %s", rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
		if d := w.Header().Get("X-Cache"); d != "HIT" {
			b.Fatalf("disposition %q", d)
		}
	}
}
