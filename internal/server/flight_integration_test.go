package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppatc/internal/obs/flight"
)

// decodeFlightDump parses a /debug/flight NDJSON body.
func decodeFlightDump(t *testing.T, body []byte) []flight.Event {
	t.Helper()
	var evs []flight.Event
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e flight.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad flight NDJSON line %q: %v", line, err)
		}
		evs = append(evs, e)
	}
	return evs
}

// TestFlightDumpAttributionCrossChecks drives every computing endpoint
// once cold and once hot, then asserts the flight dump contains one
// event per request whose stage sums re-add to the end-to-end latency
// within 1% — the partition invariant the attribution discipline
// promises.
func TestFlightDumpAttributionCrossChecks(t *testing.T) {
	_, ts := newTestServer(t)

	reqs := []struct{ path, body string }{
		{"/v1/evaluate", `{"system":"si","workload":"matmult-int"}`},
		{"/v1/evaluate", `{"system":"si","workload":"matmult-int"}`}, // HIT
		{"/v1/suite", `{"grid":"US"}`},
		{"/v1/tcdp", `{"workload":"matmult-int"}`},
		{"/v1/batch", `{"items":[{"system":"si","workload":"crc32"},{"system":"m3d","workload":"crc32"}]}`},
	}
	for _, rq := range reqs {
		resp, b := post(t, ts, rq.path, rq.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %s", rq.path, resp.StatusCode, b)
		}
	}

	resp, body := get(t, ts, "/debug/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight dump status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("flight dump content type %q", ct)
	}
	evs := decodeFlightDump(t, body)
	if len(evs) != len(reqs) {
		t.Fatalf("flight dump has %d events, want %d", len(evs), len(reqs))
	}
	var last uint64
	sawHit, sawMiss, sawBatch := false, false, false
	for _, e := range evs {
		if e.Seq <= last {
			t.Fatalf("sequence not strictly ascending: %d after %d", e.Seq, last)
		}
		last = e.Seq
		if err := e.CheckTotal(0.01); err != nil {
			t.Fatalf("stage sum cross-check failed: %v (event %+v)", err, e)
		}
		if e.RequestID == "" {
			t.Fatalf("event %d has no request ID", e.Seq)
		}
		switch {
		case e.Endpoint == "evaluate" && e.Disposition == "HIT":
			sawHit = true
			if e.ComputeNS != 0 {
				t.Fatalf("cache hit attributed compute time: %+v", e)
			}
		case e.Endpoint == "evaluate" && e.Disposition == "MISS":
			sawMiss = true
			if e.ComputeNS <= 0 {
				t.Fatalf("cache miss attributed no compute time: %+v", e)
			}
		case e.Endpoint == "batch":
			sawBatch = true
			if e.BatchSize != 2 {
				t.Fatalf("batch event has batch_size %d, want 2", e.BatchSize)
			}
		}
	}
	if !sawHit || !sawMiss || !sawBatch {
		t.Fatalf("missing expected events (hit=%v miss=%v batch=%v):\n%s", sawHit, sawMiss, sawBatch, body)
	}
}

// TestFlightDumpRingSelection exercises ?ring= and ?n=.
func TestFlightDumpRingSelection(t *testing.T) {
	cfg := quietConfig()
	cfg.SlowThreshold = time.Hour // nothing in this test is slow
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	for i := 0; i < 3; i++ {
		post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32"}`)
	}
	if resp, body := get(t, ts, "/debug/flight?ring=recent&n=2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("recent dump status %d", resp.StatusCode)
	} else if evs := decodeFlightDump(t, body); len(evs) != 2 {
		t.Fatalf("n=2 returned %d events", len(evs))
	}
	if _, body := get(t, ts, "/debug/flight?ring=slow"); len(decodeFlightDump(t, body)) != 0 {
		t.Fatalf("slow ring unexpectedly populated: %s", body)
	}
	if resp, _ := get(t, ts, "/debug/flight?ring=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus ring status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/flight?n=-1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative n status %d, want 400", resp.StatusCode)
	}
}

// TestSlowBatchAttributesQueueWait pins the acceptance scenario: on a
// one-worker server, a cold batch serializes behind the pool, so the
// batch's flight event must attribute the majority of its latency to
// queue_wait — the head-of-line-blocking signal ROADMAP item 2 is
// waiting for. The slow threshold is lowered so the event also lands in
// the slow ring.
func TestSlowBatchAttributesQueueWait(t *testing.T) {
	cfg := quietConfig()
	cfg.Workers = 1
	cfg.SlowThreshold = time.Millisecond
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	// A cold batch of distinct tuples: every item is a miss, and with one
	// worker each one queues behind the previous item's computation.
	items := make([]string, 0, 8)
	for _, wl := range []string{"crc32", "edn", "sieve", "strsearch"} {
		items = append(items, fmt.Sprintf(`{"system":"si","workload":%q}`, wl))
		items = append(items, fmt.Sprintf(`{"system":"m3d","workload":%q}`, wl))
	}
	body := `{"items":[` + strings.Join(items, ",") + `]}`
	resp, b := post(t, ts, "/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("cold batch X-Cache %q, want MISS", got)
	}

	resp, dump := get(t, ts, "/debug/flight?ring=slow")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow dump status %d", resp.StatusCode)
	}
	evs := decodeFlightDump(t, dump)
	var batch *flight.Event
	for i := range evs {
		if evs[i].Endpoint == "batch" {
			batch = &evs[i]
			break
		}
	}
	if batch == nil {
		t.Fatalf("no batch event in the slow ring: %s", dump)
	}
	if !batch.Slow {
		t.Fatalf("slow-ring batch event not marked slow: %+v", batch)
	}
	if err := batch.CheckTotal(0.01); err != nil {
		t.Fatalf("batch stage cross-check: %v", err)
	}
	if frac := float64(batch.QueueWaitNS) / float64(batch.TotalNS); frac < 0.5 {
		t.Fatalf("cold batch on 1 worker attributed %.0f%% to queue_wait, want >= 50%% (%+v)",
			frac*100, batch)
	}
}

// TestDispositionHistogramsFedFromEveryRequest pins satellite 1: cache
// hits and coalesced requests must feed the endpoint × disposition
// latency histograms (the plain stage histograms only see misses).
func TestDispositionHistogramsFedFromEveryRequest(t *testing.T) {
	srv, ts := newTestServer(t)
	post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32"}`)
	post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32"}`)
	if n := srv.Metrics().DispositionCount("evaluate", "MISS"); n != 1 {
		t.Fatalf("MISS disposition count %d, want 1", n)
	}
	if n := srv.Metrics().DispositionCount("evaluate", "HIT"); n != 1 {
		t.Fatalf("HIT disposition count %d, want 1 — the hit path must be observed", n)
	}

	_, body := get(t, ts, "/metrics")
	text := string(body)
	for _, want := range []string{
		`ppatcd_request_disposition_seconds_count{endpoint="evaluate",disposition="HIT"} 1`,
		`ppatcd_request_disposition_seconds_count{endpoint="evaluate",disposition="MISS"} 1`,
		`ppatcd_slowest_request_seconds{endpoint="evaluate",disposition="HIT",request_id="`,
		"ppatcd_flight_dropped_total 0",
		"ppatcd_stream_subscribers 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsStreamDeliversAndReleases asserts the SSE surface: a
// subscriber receives request events as they complete, and a client
// disconnect releases the subscription (no leak to back-pressure the
// request path).
func TestMetricsStreamDeliversAndReleases(t *testing.T) {
	srv, ts := newTestServer(t)

	req, err := http.NewRequest("GET", ts.URL+"/v1/metrics/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream connect: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	// Subscription is live once the initial metrics snapshot arrives.
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "event: metrics") {
		t.Fatalf("first stream line %q, err %v", line, err)
	}
	if n := srv.Recorder().Hub().Subscribers(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}

	post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32"}`)
	deadline := time.After(5 * time.Second)
	got := make(chan flight.Event, 1)
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			if !strings.HasPrefix(line, "event: flight") {
				continue
			}
			data, err := r.ReadString('\n')
			if err != nil || !strings.HasPrefix(data, "data: ") {
				return
			}
			var e flight.Event
			if json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &e) == nil {
				got <- e
				return
			}
		}
	}()
	select {
	case e := <-got:
		if e.Endpoint != "evaluate" || e.Seq == 0 {
			t.Fatalf("streamed event %+v", e)
		}
	case <-deadline:
		t.Fatal("no flight event arrived on the stream")
	}

	// Disconnect must release the subscription.
	resp.Body.Close()
	for i := 0; i < 200; i++ {
		if srv.Recorder().Hub().Subscribers() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("subscription leaked after disconnect: %d live", srv.Recorder().Hub().Subscribers())
}

// TestSlowRequestLogged asserts the threshold-gated slow-request log
// line carries the attribution fields.
func TestSlowRequestLogged(t *testing.T) {
	var buf syncBuffer
	cfg := quietConfig()
	cfg.Workers = 1
	cfg.SlowThreshold = time.Nanosecond // everything is slow
	cfg.Logger = slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32"}`)
	logged := buf.String()
	if !strings.Contains(logged, `"msg":"slow request"`) {
		t.Fatalf("no slow-request log line:\n%s", logged)
	}
	for _, field := range []string{"queue_wait_ms", "compute_ms", "request_id", "pool_depth"} {
		if !strings.Contains(logged, field) {
			t.Fatalf("slow-request log missing %q:\n%s", field, logged)
		}
	}
}

// syncBuffer is a mutex-guarded bytes buffer for concurrent log writes.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var _ io.Writer = (*syncBuffer)(nil)
