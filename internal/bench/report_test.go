package bench

import (
	"strings"
	"testing"
)

func TestSeqFromFilename(t *testing.T) {
	cases := map[string]int{
		"BENCH_4.json":            4,
		"/some/dir/BENCH_17.json": 17,
		"bench.json":              0,
		"BENCH_.json":             0,
		"BENCH_007.json":          7,
	}
	for name, want := range cases {
		if got := SeqFromFilename(name); got != want {
			t.Errorf("SeqFromFilename(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestParseVersions(t *testing.T) {
	v1 := []byte(`{"schema":"ppatc-bench/v1","config":{},"totals":{},
		"endpoints":{"evaluate":{"count":1,"p95_ms":0.05}}}`)
	r, err := Parse(v1, "BENCH_4.json")
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 4 || r.Engine != nil || r.File != "BENCH_4.json" {
		t.Errorf("v1 parse: %+v", r)
	}

	v2 := []byte(`{"schema":"ppatc-bench/v2","seq":9,
		"engine":{"go_version":"go1.23","goos":"linux","goarch":"amd64","gomaxprocs":4,"num_cpu":4},
		"config":{},"totals":{},
		"endpoints":{"evaluate":{"count":1,"p95_ms":0.05}}}`)
	r, err = Parse(v2, "whatever.json")
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 9 || r.Engine == nil {
		t.Errorf("v2 parse: %+v", r)
	}

	for name, bad := range map[string]string{
		"missing schema": `{"endpoints":{"e":{}}}`,
		"future schema":  `{"schema":"ppatc-bench/v9","endpoints":{"e":{}}}`,
		"no endpoints":   `{"schema":"ppatc-bench/v2"}`,
		"not json":       `nope`,
	} {
		if _, err := Parse([]byte(bad), "x.json"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSortedEndpointsBestFirst(t *testing.T) {
	r := &Report{Endpoints: map[string]*EndpointStats{
		"slow":   {P95Ms: 0.9},
		"fast":   {P95Ms: 0.1},
		"mid-b":  {P95Ms: 0.5},
		"mid-a":  {P95Ms: 0.5}, // tie broken by name
		"fast2":  {P95Ms: 0.1},
		"fast2b": {P95Ms: 0.2},
	}}
	got := strings.Join(r.SortedEndpoints(), ",")
	want := "fast,fast2,fast2b,mid-a,mid-b,slow"
	if got != want {
		t.Errorf("order %s, want %s", got, want)
	}
}

func TestEngineString(t *testing.T) {
	var e *Engine
	if e.String() != "unknown" {
		t.Errorf("nil engine = %q", e.String())
	}
	if cur := CurrentEngine(); cur.GoVersion == "" || cur.NumCPU < 1 {
		t.Errorf("current engine incomplete: %+v", cur)
	}
}
