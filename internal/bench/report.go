// Package bench defines the load-bench report document shared by the
// harness that writes it (cmd/ppatcload) and the tooling that reads it
// back (cmd/ppatcbench): the schema constants, the report structure,
// and version-aware parsing of committed BENCH_*.json files.
package bench

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Report schema versions. V1 reports carry config, totals and
// per-endpoint stats; V2 adds the bench sequence number and the engine
// stamp, so a report is self-describing about where and in what order
// it was taken.
const (
	SchemaV1 = "ppatc-bench/v1"
	SchemaV2 = "ppatc-bench/v2"
)

// Engine identifies the toolchain and machine shape behind a report.
// Latency numbers only compare meaningfully between reports with equal
// engines; the check tool warns (but does not fail) across engines.
//
//ppatc:schema
type Engine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentEngine stamps the running process's engine.
func CurrentEngine() *Engine {
	return &Engine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// String renders the engine as one comparable token.
func (e *Engine) String() string {
	if e == nil {
		return "unknown"
	}
	return fmt.Sprintf("%s %s/%s maxprocs=%d cpus=%d",
		e.GoVersion, e.GOOS, e.GOARCH, e.GOMAXPROCS, e.NumCPU)
}

// Config records the harness knobs that shaped a run.
//
//ppatc:schema
type Config struct {
	DurationS     float64        `json:"duration_s"`
	Workers       int            `json:"workers"`
	Seed          int64          `json:"seed"`
	BatchSize     int            `json:"batch_size"`
	Mix           map[string]int `json:"mix"`
	Workloads     []string       `json:"workloads"`
	Warmup        bool           `json:"warmup"`
	ServerWorkers int            `json:"server_workers"`
	CacheShards   int            `json:"cache_shards"`
	// Attribution marks runs that aggregated the flight recorder's
	// latency attributions into the report (ppatcload -attribution).
	Attribution bool `json:"attribution,omitempty"`
	// Targets lists the daemon base URLs of a multi-node run
	// (ppatcload -targets); empty for the in-process single-server
	// harness. Multi-node latency includes real HTTP, so it only
	// compares against other multi-node runs.
	Targets []string `json:"targets,omitempty"`
}

// StageAttribution aggregates the flight recorder's per-request latency
// attributions for one endpoint over a run: mean milliseconds spent in
// each stage, over Events completed requests. The stage means re-add to
// the endpoint's mean end-to-end latency — the same partition invariant
// each individual flight event carries.
//
//ppatc:schema
type StageAttribution struct {
	Events        int     `json:"events"`
	QueueWaitMs   float64 `json:"queue_wait_ms"`
	CacheLookupMs float64 `json:"cache_lookup_ms"`
	ComputeMs     float64 `json:"compute_ms"`
	// PeerForwardMs is time spent forwarding to a key's cluster owner
	// (zero on unclustered runs).
	PeerForwardMs float64 `json:"peer_forward_ms,omitempty"`
	EncodeMs      float64 `json:"encode_ms"`
	StoreWriteMs  float64 `json:"store_write_ms"`
	OtherMs       float64 `json:"other_ms"`
	TotalMs       float64 `json:"total_ms"`
}

// NodeStats aggregates one target node's share of a multi-node run
// (ppatcload -targets): how much traffic it absorbed, how it resolved
// (local cache hit / one-hop forward to the key's owner / error), and
// its own latency percentiles.
//
//ppatc:schema
type NodeStats struct {
	Target    string `json:"target"`
	Requests  int    `json:"requests"`
	Errors    int    `json:"errors"`
	CacheHits int    `json:"cache_hits"`
	// Remote counts responses served by forwarding to the key's
	// consistent-hash owner (X-Cache: REMOTE).
	Remote int     `json:"remote"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
}

// Totals aggregates the whole run.
//
//ppatc:schema
type Totals struct {
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	ElapsedS      float64 `json:"elapsed_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
}

// EndpointStats aggregates one endpoint's measured requests.
//
//ppatc:schema
type EndpointStats struct {
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	CacheHits int     `json:"cache_hits"`
}

// P99Budget records the head-of-line-blocking scenario (ppatcload
// -p99-scenario): single-evaluation probe latency measured while
// flooder clients keep the pool saturated with cold 256-tuple batches
// against a deliberately tiny cache. The admission-control scheduler is
// judged on P99OverP95 — without per-class admission the probe p99 is
// two orders of magnitude above its p95; with it the tail stays within
// single digits.
//
//ppatc:schema
type P99Budget struct {
	// Flooders is the number of concurrent batch-flooding clients;
	// BatchSize the items per flood batch; CacheEntries the per-shard
	// cache capacity that keeps the batches cold.
	Flooders     int `json:"flooders"`
	BatchSize    int `json:"batch_size"`
	CacheEntries int `json:"cache_entries"`
	// Probes is the number of single /v1/evaluate requests measured.
	Probes int     `json:"probes"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// P99OverP95 is the probe tail ratio the admission gate pins.
	P99OverP95 float64 `json:"p99_over_p95"`
}

// MemoStageCounters is one pipeline stage's memo traffic in a sweep
// bench: Misses counts actual stage executions, Hits replays.
//
//ppatc:schema
type MemoStageCounters struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// SweepBench records the stage-memoization comparison (ppatcload
// -sweep-bench): one mixed-axis sweep run twice — memo disabled, then
// memoized — with byte-compared NDJSON output. Identical must be true
// for SpeedupX to mean anything: the memo's contract is identical
// results, only faster.
//
//ppatc:schema
type SweepBench struct {
	// Points is the sweep's plan size; Spec names its shape.
	Points int    `json:"points"`
	Spec   string `json:"spec"`
	// NoMemoS and MemoS are the two runs' wall-clock seconds; SpeedupX
	// their ratio.
	NoMemoS  float64 `json:"no_memo_s"`
	MemoS    float64 `json:"memo_s"`
	SpeedupX float64 `json:"speedup_x"`
	// Identical reports whether the two runs' NDJSON bytes compared
	// equal.
	Identical bool `json:"identical"`
	// MemoStages holds the memoized run's per-stage hit/miss counters.
	MemoStages map[string]MemoStageCounters `json:"memo_stages,omitempty"`
}

// Report is one load-bench run's output document (BENCH_<seq>.json).
//
//ppatc:schema
type Report struct {
	Schema string `json:"schema"`
	// Seq orders reports in the bench history. V1 reports don't carry
	// it; Parse derives it from the filename.
	Seq int `json:"seq,omitempty"`
	// Engine stamps the toolchain/machine (V2; nil on V1 reports).
	Engine *Engine `json:"engine,omitempty"`
	// File is the basename the report was parsed from (not serialized).
	File string `json:"-"`

	Config    Config                    `json:"config"`
	Totals    Totals                    `json:"totals"`
	Endpoints map[string]*EndpointStats `json:"endpoints"`
	// Attribution holds per-endpoint stage breakdowns when the run was
	// taken with -attribution (absent otherwise; still ppatc-bench/v2).
	Attribution map[string]*StageAttribution `json:"attribution,omitempty"`
	// Nodes holds per-target stats on multi-node runs (-targets),
	// keyed by target URL; the merged cluster-wide view stays in
	// Endpoints/Totals. Absent on in-process runs.
	Nodes map[string]*NodeStats `json:"nodes,omitempty"`
	// P99Budget holds the batch-saturation probe scenario when the run
	// was taken with -p99-scenario (absent otherwise).
	P99Budget *P99Budget `json:"p99_budget,omitempty"`
	// SweepBench holds the memoized-vs-direct sweep comparison when the
	// run was taken with -sweep-bench (absent otherwise).
	SweepBench *SweepBench `json:"sweep_bench,omitempty"`
}

// SeqFromFilename extracts the trailing integer of a report filename:
// BENCH_4.json → 4. Returns 0 when there is none.
func SeqFromFilename(name string) int {
	base := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	i := len(base)
	for i > 0 && base[i-1] >= '0' && base[i-1] <= '9' {
		i--
	}
	n, err := strconv.Atoi(base[i:])
	if err != nil {
		return 0
	}
	return n
}

// Parse decodes one report, accepting both schema versions. V1 reports
// (and V2 reports missing a sequence) get their Seq derived from the
// filename, so pre-versioning BENCH files stay first-class history.
func Parse(data []byte, filename string) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", filename, err)
	}
	switch r.Schema {
	case SchemaV1, SchemaV2:
	case "":
		return nil, fmt.Errorf("bench: %s: missing schema (want %s or %s)", filename, SchemaV1, SchemaV2)
	default:
		return nil, fmt.Errorf("bench: %s: unsupported schema %q (want %s or %s)", filename, r.Schema, SchemaV1, SchemaV2)
	}
	if r.Seq == 0 {
		r.Seq = SeqFromFilename(filename)
	}
	if r.File = filepath.Base(filename); r.File == "." {
		r.File = filename
	}
	if len(r.Endpoints) == 0 {
		return nil, fmt.Errorf("bench: %s: no endpoint stats", filename)
	}
	return &r, nil
}

// SortedEndpoints returns the report's endpoint names ordered
// best-first by p95 (ties by name) — the ordering BENCHMARK.md uses.
func (r *Report) SortedEndpoints() []string {
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := r.Endpoints[names[i]], r.Endpoints[names[j]]
		if a.P95Ms != b.P95Ms {
			return a.P95Ms < b.P95Ms
		}
		return names[i] < names[j]
	})
	return names
}

// Marshal renders the report as the canonical committed file form:
// two-space indent, trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
