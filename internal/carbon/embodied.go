package carbon

import (
	"errors"
	"fmt"

	"ppatc/internal/units"
)

// FacilityOverhead is the multiplicative overhead applied to fabrication
// electricity to approximate facility energy (HVAC, clean-room air handling,
// ultrapure water, ...): EPA_f = EPA × 1.4, as estimated by the 2015 ITRS
// ESH chapter and adopted by the paper (Fig. 2 caption).
const FacilityOverhead = 1.4

// EmbodiedInputs carries the per-wafer terms of Eq. 2:
//
//	C_embodied = (MPA + GPA + CI_fab · EPA) · Area
//
// MPA is materials procurement carbon per area, GPA is direct gas emissions
// per area, EPA is fabrication electricity per wafer (before the facility
// overhead), and CIFab is the fab's grid intensity.
type EmbodiedInputs struct {
	// MPA is the materials-procurement carbon per unit wafer area.
	MPA units.CarbonPerArea
	// GPA is the direct gas-emission carbon per unit wafer area.
	GPA units.CarbonPerArea
	// EPA is the fabrication electricity for one whole wafer, before the
	// facility overhead is applied.
	EPA units.Energy
	// CIFab is the carbon intensity of the fab's electricity supply.
	CIFab units.CarbonIntensity
	// WaferArea is the area of the wafer the per-area terms apply to.
	WaferArea units.Area
	// FacilityFactor multiplies EPA to account for facility energy; zero
	// means the default FacilityOverhead (1.4).
	FacilityFactor float64
}

// Validate checks the inputs for physical sanity.
func (in EmbodiedInputs) Validate() error {
	switch {
	case in.WaferArea <= 0:
		return errors.New("carbon: wafer area must be positive")
	case in.MPA < 0 || in.GPA < 0:
		return errors.New("carbon: MPA and GPA must be non-negative")
	case in.EPA < 0:
		return errors.New("carbon: EPA must be non-negative")
	case in.CIFab < 0:
		return errors.New("carbon: CI_fab must be non-negative")
	case in.FacilityFactor < 0:
		return errors.New("carbon: facility factor must be non-negative")
	}
	return nil
}

// facility reports the effective facility multiplier.
func (in EmbodiedInputs) facility() float64 {
	if in.FacilityFactor == 0 {
		return FacilityOverhead
	}
	return in.FacilityFactor
}

// EmbodiedBreakdown itemizes a per-wafer embodied-carbon result.
type EmbodiedBreakdown struct {
	// Materials is the MPA contribution over the wafer.
	Materials units.Carbon
	// Gases is the GPA contribution over the wafer.
	Gases units.Carbon
	// Electricity is the CI_fab · EPA_f contribution (facility overhead
	// included).
	Electricity units.Carbon
	// EPAFacility is the facility-adjusted fabrication energy EPA_f.
	EPAFacility units.Energy
}

// Total reports the per-wafer embodied carbon.
func (b EmbodiedBreakdown) Total() units.Carbon {
	return b.Materials + b.Gases + b.Electricity
}

// EmbodiedPerWafer evaluates Eq. 2 for one wafer, returning the itemized
// contributions.
func EmbodiedPerWafer(in EmbodiedInputs) (EmbodiedBreakdown, error) {
	if err := in.Validate(); err != nil {
		return EmbodiedBreakdown{}, err
	}
	epaF := units.Energy(float64(in.EPA) * in.facility())
	return EmbodiedBreakdown{
		Materials:   in.MPA.Over(in.WaferArea),
		Gases:       in.GPA.Over(in.WaferArea),
		Electricity: in.CIFab.Apply(epaF),
		EPAFacility: epaF,
	}, nil
}

// PerGoodDie amortizes a per-wafer embodied carbon over the good dies on the
// wafer (Eq. 5): C_embodied per good die = C_wafer / (N_diePerWafer · Yield).
func PerGoodDie(perWafer units.Carbon, diesPerWafer int, yield float64) (units.Carbon, error) {
	if diesPerWafer <= 0 {
		return 0, fmt.Errorf("carbon: dies per wafer must be positive, got %d", diesPerWafer)
	}
	if yield <= 0 || yield > 1 {
		return 0, fmt.Errorf("carbon: yield must be in (0, 1], got %g", yield)
	}
	return units.Carbon(float64(perWafer) / (float64(diesPerWafer) * yield)), nil
}

// GPAScaled evaluates Eq. 3: the gas emissions per area of a process are
// scaled from a reference process by the ratio of fabrication energies,
//
//	GPA_process = (EPA_process / EPA_reference) · GPA_reference.
func GPAScaled(epaProcess, epaReference units.Energy, gpaReference units.CarbonPerArea) (units.CarbonPerArea, error) {
	if epaReference <= 0 {
		return 0, errors.New("carbon: reference EPA must be positive")
	}
	if epaProcess < 0 {
		return 0, errors.New("carbon: process EPA must be non-negative")
	}
	return units.CarbonPerArea(float64(gpaReference) * float64(epaProcess) / float64(epaReference)), nil
}
