package carbon

import (
	"errors"
	"time"

	"ppatc/internal/units"
)

// UsagePattern describes when and how long the system runs each day, the
// duty-cycle structure the paper encodes with the indicator function
// 𝕀_{8to10pm}(t) in Eq. 6. The paper's case study runs 2 hours per day,
// from 8 pm to 10 pm, over a 24-month lifetime.
type UsagePattern struct {
	// StartHour is the local hour of day the daily window opens.
	StartHour float64
	// HoursPerDay is the length of the daily window.
	HoursPerDay float64
	// Lifetime is the total calendar lifetime of the system.
	Lifetime units.Months
}

// PaperUsage is the paper's representative usage pattern: 2 hours per day
// (8 pm to 10 pm) over 24 months.
var PaperUsage = UsagePattern{StartHour: 20, HoursPerDay: 2, Lifetime: 24}

// Validate checks the pattern for sanity.
func (u UsagePattern) Validate() error {
	switch {
	case u.HoursPerDay <= 0 || u.HoursPerDay > 24:
		return errors.New("carbon: hours per day must be in (0, 24]")
	case u.StartHour < 0 || u.StartHour >= 24:
		return errors.New("carbon: start hour must be in [0, 24)")
	case u.Lifetime <= 0:
		return errors.New("carbon: lifetime must be positive")
	}
	return nil
}

// DutyCycle reports the fraction of wall-clock time the system is on
// (the paper's "2 hours/day ÷ 24 hours/day" factor in Eq. 8).
func (u UsagePattern) DutyCycle() float64 { return u.HoursPerDay / units.HoursPerDay }

// EndHour reports the closing hour of the daily window, possibly ≥ 24 when
// the window wraps midnight.
func (u UsagePattern) EndHour() float64 { return u.StartHour + u.HoursPerDay }

// OnHours reports the total powered-on hours across the lifetime.
func (u UsagePattern) OnHours() float64 {
	return u.Lifetime.Hours() * u.DutyCycle()
}

// Operational evaluates Eq. 8 for a constant operating power:
//
//	C_operational = mean(CI_use over window) · P · t_life · duty.
//
// The profile supplies CI_use(t); its average over the daily usage window is
// the CI̅_use,window term of Eq. 8.
func Operational(p units.Power, u UsagePattern, profile Profile) (units.Carbon, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	if p < 0 {
		return 0, errors.New("carbon: power must be non-negative")
	}
	ci := MeanWindow(profile, u.StartHour, u.EndHour())
	energy := p.Times(time.Duration(u.OnHours() * float64(time.Hour)))
	return ci.Apply(energy), nil
}

// OperationalIntegral evaluates the general form of Eq. 1/Eq. 7 by direct
// numerical integration of CI_use(t)·P·𝕀_window(t) dt over the lifetime,
// stepping at the given resolution. It converges to Operational for
// piecewise-constant profiles and exists so that callers can check the
// closed form (Eq. 8) against the definition (Eq. 1).
func OperationalIntegral(p units.Power, u UsagePattern, profile Profile, step time.Duration) (units.Carbon, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	if p < 0 {
		return 0, errors.New("carbon: power must be non-negative")
	}
	if step <= 0 {
		return 0, errors.New("carbon: integration step must be positive")
	}
	totalHours := u.Lifetime.Hours()
	stepHours := step.Hours()
	var grams float64
	for t := 0.0; t < totalHours; t += stepHours {
		h := stepHours
		if t+h > totalHours {
			h = totalHours - t
		}
		mid := t + h/2
		hourOfDay := mid - 24*float64(int(mid/24))
		if !inWindow(hourOfDay, u.StartHour, u.EndHour()) {
			continue
		}
		ci := profile.At(hourOfDay)
		e := p.Times(time.Duration(h * float64(time.Hour)))
		grams += ci.Apply(e).Grams()
	}
	return units.GramsCO2e(grams), nil
}

// inWindow reports whether hour (in [0,24)) falls inside the daily window
// [start, end), handling windows that wrap midnight (end may exceed 24).
func inWindow(hour, start, end float64) bool {
	if end <= 24 {
		return hour >= start && hour < end
	}
	return hour >= start || hour < end-24
}

// OperationalPower lumps the time-independent terms of Eq. 6 into a single
// operating power:
//
//	P_operational = P_static + (E_dynM0 + E_mem) / T_clk    (per cycle terms)
//
// given the M0 static power, the per-cycle dynamic energy of the core, the
// per-cycle operational energy of the memories, and the clock frequency.
func OperationalPower(static units.Power, dynPerCycle, memPerCycle units.Energy, clk units.Frequency) units.Power {
	if clk == 0 {
		return static
	}
	perCycle := float64(dynPerCycle) + float64(memPerCycle)
	return static + units.Power(perCycle*float64(clk))
}
