package carbon

import "ppatc/internal/units"

// Total is the headline quantity of the paper: total carbon footprint
// tC = C_embodied + C_operational for one die over its lifetime.
type Total struct {
	// Embodied is the per-good-die embodied carbon (Eq. 5).
	Embodied units.Carbon
	// Operational is the lifetime use-phase carbon (Eq. 8).
	Operational units.Carbon
}

// TC reports the total carbon footprint.
func (t Total) TC() units.Carbon { return t.Embodied + t.Operational }

// EmbodiedDominates reports whether the embodied contribution exceeds the
// operational one — the regime the paper identifies before the 14-month
// (all-Si) and 19-month (M3D) crossovers in Fig. 5.
func (t Total) EmbodiedDominates() bool { return t.Embodied > t.Operational }

// WaterPerArea is an extension hook for the water-consumption accounting the
// paper's conclusion lists as future work. Fab water usage is tracked per
// wafer area (liters/cm²) and reported alongside carbon; it does not enter
// tC but lets downstream users extend the figure of merit.
type WaterPerArea float64

// LitersPerSquareCentimeter constructs a water density.
func LitersPerSquareCentimeter(l float64) WaterPerArea { return WaterPerArea(l * 1e4) }

// Over reports total liters of water for the given area.
func (w WaterPerArea) Over(a units.Area) float64 {
	return float64(w) * a.SquareMeters()
}

// CostPerArea is an extension hook for the cost accounting the paper's
// conclusion lists as future work (USD/cm² of processed wafer).
type CostPerArea float64

// DollarsPerSquareCentimeter constructs a cost density.
func DollarsPerSquareCentimeter(d float64) CostPerArea { return CostPerArea(d * 1e4) }

// Over reports total dollars for the given area.
func (c CostPerArea) Over(a units.Area) float64 {
	return float64(c) * a.SquareMeters()
}
