package carbon

import (
	"errors"
	"time"

	"ppatc/internal/units"
)

// State-preserving standby. The paper's Eq. 6 assumes the system is
// entirely off outside its usage window. Many embedded deployments
// instead sleep with state retained — and there the memory technology
// choice bites hardest: a Si gain-cell eDRAM must keep refreshing through
// standby, while the IGZO cell's >10⁵ s retention lets the M3D design
// power-gate everything and simply resume. OperationalWithStandby extends
// Eq. 8 with a standby term:
//
//	C_op = CI̅_window · P_active · t_on  +  CI̅_complement · P_standby · t_off.

// OperationalWithStandby evaluates the extended operational carbon. The
// usage pattern defines the active window; the rest of each day runs at
// the standby power.
func OperationalWithStandby(active, standby units.Power, u UsagePattern, profile Profile) (units.Carbon, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	if active < 0 || standby < 0 {
		return 0, errors.New("carbon: powers must be non-negative")
	}
	onCarbon, err := Operational(active, u, profile)
	if err != nil {
		return 0, err
	}
	offHoursPerDay := units.HoursPerDay - u.HoursPerDay
	if offHoursPerDay <= 0 {
		return onCarbon, nil
	}
	// Complement window: from the end of the active window around to its
	// start, so the standby CI average covers the right hours of day.
	ciOff := MeanWindow(profile, u.EndHour(), u.StartHour+24)
	offHours := u.Lifetime.Hours() * offHoursPerDay / units.HoursPerDay
	offEnergy := standby.Times(time.Duration(offHours * float64(time.Hour)))
	return onCarbon + ciOff.Apply(offEnergy), nil
}

// StandbyBreakEven reports the standby power (W) at which a design's
// lifetime operational carbon doubles relative to the off-when-idle
// assumption — a quick figure of merit for how much sleep power a
// deployment can tolerate before standby dominates.
func StandbyBreakEven(active units.Power, u UsagePattern, profile Profile) (units.Power, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	if active <= 0 {
		return 0, errors.New("carbon: active power must be positive")
	}
	onCarbon, err := Operational(active, u, profile)
	if err != nil {
		return 0, err
	}
	offHoursPerDay := units.HoursPerDay - u.HoursPerDay
	if offHoursPerDay <= 0 {
		return 0, errors.New("carbon: pattern has no standby time")
	}
	ciOff := MeanWindow(profile, u.EndHour(), u.StartHour+24)
	if ciOff <= 0 {
		return 0, errors.New("carbon: standby-window intensity must be positive")
	}
	offHours := u.Lifetime.Hours() * offHoursPerDay / units.HoursPerDay
	// Solve ciOff · P · offHours·3600 = onCarbon.
	grams := onCarbon.Grams()
	watts := grams / (float64(ciOff) * offHours * 3600)
	return units.Watts(watts), nil
}
