package carbon

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ppatc/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

var waferArea = units.SquareCentimeters(math.Pi * 15 * 15)

func TestGridsCanonicalValues(t *testing.T) {
	want := map[string]float64{"US": 380, "Coal": 820, "Solar": 48, "Taiwan": 563}
	for _, g := range Grids() {
		if got := g.Intensity.GramsPerKilowattHour(); got != want[g.Name] {
			t.Errorf("grid %s intensity = %v, want %v", g.Name, got, want[g.Name])
		}
	}
	err := func() error {
		_, err := GridByName("Mars")
		return err
	}()
	if err == nil {
		t.Error("GridByName(Mars) should fail")
	} else {
		// The error must list the valid names so callers can self-correct.
		for _, name := range []string{"US", "Coal", "Solar", "Taiwan"} {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("GridByName error %q should mention %q", err, name)
			}
		}
	}
	g, err := GridByName("Taiwan")
	if err != nil || g.Name != "Taiwan" {
		t.Errorf("GridByName(Taiwan) = %v, %v", g, err)
	}
	// Lookups are case-insensitive but return the canonical name.
	for _, alias := range []string{"taiwan", "TAIWAN", "taiWAN"} {
		g, err := GridByName(alias)
		if err != nil || g.Name != "Taiwan" {
			t.Errorf("GridByName(%s) = %v, %v, want Taiwan", alias, g, err)
		}
	}
}

func TestEmbodiedPerWaferEq2(t *testing.T) {
	// Hand-computed example with the paper's anchors: all-Si process at
	// 704.7 kWh/wafer on the US grid.
	in := EmbodiedInputs{
		MPA:       units.GramsPerSquareCentimeter(500),
		GPA:       units.GramsPerSquareCentimeter(0.79 * 200),
		EPA:       units.KilowattHours(704.7),
		CIFab:     GridUS.Intensity,
		WaferArea: waferArea,
	}
	b, err := EmbodiedPerWafer(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Materials.Kilograms(); !almostEqual(got, 353.43, 1e-3) {
		t.Errorf("materials = %v kg, want ≈353.4", got)
	}
	if got := b.Gases.Kilograms(); !almostEqual(got, 111.68, 1e-3) {
		t.Errorf("gases = %v kg, want ≈111.7", got)
	}
	// Electricity: 704.7 kWh × 1.4 × 380 g/kWh = 374.9 kg.
	if got := b.Electricity.Kilograms(); !almostEqual(got, 374.9, 1e-3) {
		t.Errorf("electricity = %v kg, want ≈374.9", got)
	}
	if got := b.Total().Kilograms(); !almostEqual(got, 840.0, 1e-3) {
		t.Errorf("total = %v kg, want ≈840", got)
	}
	if got := b.EPAFacility.KilowattHours(); !almostEqual(got, 704.7*1.4, 1e-9) {
		t.Errorf("EPA_f = %v kWh, want 1.4×EPA", got)
	}
}

func TestEmbodiedFacilityFactorOverride(t *testing.T) {
	in := EmbodiedInputs{
		EPA: units.KilowattHours(100), CIFab: units.GramsPerKilowattHour(1000),
		WaferArea: waferArea, FacilityFactor: 1.0,
	}
	b, err := EmbodiedPerWafer(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Electricity.Kilograms(); !almostEqual(got, 100, 1e-9) {
		t.Errorf("electricity without overhead = %v kg, want 100", got)
	}
}

func TestEmbodiedValidation(t *testing.T) {
	bad := []EmbodiedInputs{
		{WaferArea: 0},
		{WaferArea: waferArea, MPA: -1},
		{WaferArea: waferArea, EPA: -1},
		{WaferArea: waferArea, CIFab: -1},
		{WaferArea: waferArea, FacilityFactor: -0.1},
	}
	for i, in := range bad {
		if _, err := EmbodiedPerWafer(in); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPerGoodDieEq5(t *testing.T) {
	// Paper, Table II: 837 kgCO2e over 299,127 dies at 90% yield = 3.11 g.
	c, err := PerGoodDie(units.KilogramsCO2e(837), 299127, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Grams(); !almostEqual(got, 3.11, 0.002) {
		t.Errorf("all-Si per good die = %v g, want ≈3.11", got)
	}
	// M3D: 1100 kg over 606,238 dies at 50% yield = 3.63 g.
	c, err = PerGoodDie(units.KilogramsCO2e(1100), 606238, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Grams(); !almostEqual(got, 3.63, 0.002) {
		t.Errorf("M3D per good die = %v g, want ≈3.63", got)
	}
}

func TestPerGoodDieValidation(t *testing.T) {
	if _, err := PerGoodDie(1000, 0, 0.9); err == nil {
		t.Error("zero dies should fail")
	}
	if _, err := PerGoodDie(1000, 100, 0); err == nil {
		t.Error("zero yield should fail")
	}
	if _, err := PerGoodDie(1000, 100, 1.5); err == nil {
		t.Error("yield > 1 should fail")
	}
}

func TestGPAScaledEq3(t *testing.T) {
	// GPA scales by the EPA ratio: 1.22× for M3D, 0.79× for all-Si.
	ref := units.GramsPerSquareCentimeter(200)
	got, err := GPAScaled(units.KilowattHours(1088), units.KilowattHours(892), ref)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.GramsPerSquareCentimeter(); !almostEqual(g, 200.0*1088.0/892.0, 1e-9) {
		t.Errorf("GPA M3D = %v, want %v", g, 200.0*1088.0/892.0)
	}
	if _, err := GPAScaled(1, 0, ref); err == nil {
		t.Error("zero reference EPA should fail")
	}
}

func TestOperationalEq8(t *testing.T) {
	// 9.71 mW, 2 h/day over 24 months on a flat US grid.
	p := units.Milliwatts(9.71)
	u := UsagePattern{StartHour: 20, HoursPerDay: 2, Lifetime: 24}
	c, err := Operational(p, u, Flat(GridUS))
	if err != nil {
		t.Fatal(err)
	}
	onHours := 24 * units.HoursPerMonth * (2.0 / 24.0)
	want := 9.71e-3 * onHours * 380 / 1000 // g
	if got := c.Grams(); !almostEqual(got, want, 1e-9) {
		t.Errorf("C_operational = %v g, want %v", got, want)
	}
}

func TestOperationalIntegralMatchesClosedForm(t *testing.T) {
	// Eq. 1 (numerical integral) must agree with Eq. 8 (closed form) for an
	// hourly profile, since the usage window aligns to whole hours. The
	// closed form counts duty-cycled hours pro rata, so use a whole-day
	// lifetime to avoid the partial-final-day discrepancy.
	p := units.Milliwatts(8.46)
	u := UsagePattern{StartHour: 20, HoursPerDay: 2, Lifetime: units.MonthsFromHours(90 * 24)}
	prof := EveningPeak(GridUS.Intensity)
	closed, err := Operational(p, u, prof)
	if err != nil {
		t.Fatal(err)
	}
	integral, err := OperationalIntegral(p, u, prof, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(closed.Grams(), integral.Grams(), 1e-6) {
		t.Errorf("closed form %v vs integral %v", closed, integral)
	}
}

func TestOperationalMidnightWrap(t *testing.T) {
	// A window wrapping midnight (11 pm - 1 am) must integrate correctly.
	p := units.Milliwatts(10)
	u := UsagePattern{StartHour: 23, HoursPerDay: 2, Lifetime: units.MonthsFromHours(30 * 24)}
	prof := EveningPeak(GridUS.Intensity)
	closed, err := Operational(p, u, prof)
	if err != nil {
		t.Fatal(err)
	}
	integral, err := OperationalIntegral(p, u, prof, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(closed.Grams(), integral.Grams(), 1e-6) {
		t.Errorf("wrap window: closed %v vs integral %v", closed, integral)
	}
}

func TestUsagePatternValidate(t *testing.T) {
	bad := []UsagePattern{
		{StartHour: 20, HoursPerDay: 0, Lifetime: 24},
		{StartHour: 20, HoursPerDay: 25, Lifetime: 24},
		{StartHour: -1, HoursPerDay: 2, Lifetime: 24},
		{StartHour: 24, HoursPerDay: 2, Lifetime: 24},
		{StartHour: 20, HoursPerDay: 2, Lifetime: 0},
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := PaperUsage.Validate(); err != nil {
		t.Errorf("paper usage should validate: %v", err)
	}
	if got := PaperUsage.DutyCycle(); !almostEqual(got, 2.0/24.0, 1e-12) {
		t.Errorf("duty cycle = %v, want 1/12", got)
	}
}

func TestOperationalPowerEq6(t *testing.T) {
	// Table II at 500 MHz: (1.42 + 18.0) pJ / 2 ns = 9.71 mW with no static.
	p := OperationalPower(0, units.Picojoules(1.42), units.Picojoules(18.0), units.Megahertz(500))
	if got := p.Milliwatts(); !almostEqual(got, 9.71, 1e-9) {
		t.Errorf("P_operational = %v mW, want 9.71", got)
	}
	// M3D: (1.42 + 15.5) pJ / 2 ns = 8.46 mW.
	p = OperationalPower(0, units.Picojoules(1.42), units.Picojoules(15.5), units.Megahertz(500))
	if got := p.Milliwatts(); !almostEqual(got, 8.46, 1e-9) {
		t.Errorf("P_operational M3D = %v mW, want 8.46", got)
	}
	// Static power adds through; zero clock passes static only.
	p = OperationalPower(units.Microwatts(50), units.Picojoules(1), units.Picojoules(1), 0)
	if got := p.Microwatts(); !almostEqual(got, 50, 1e-12) {
		t.Errorf("static-only power = %v µW, want 50", got)
	}
}

func TestHourlyProfileMeanAndWindow(t *testing.T) {
	prof := EveningPeak(units.GramsPerKilowattHour(380))
	if got := prof.Mean().GramsPerKilowattHour(); !almostEqual(got, 380, 1e-9) {
		t.Errorf("normalized mean = %v, want 380", got)
	}
	// The 8-10 pm window must be above the daily mean for an evening-peak
	// shape, below it for a solar-day shape at midday.
	evening := MeanWindow(prof, 20, 22).GramsPerKilowattHour()
	if evening <= 380 {
		t.Errorf("evening window mean = %v, want > 380", evening)
	}
	solar := SolarDay(units.GramsPerKilowattHour(380))
	midday := MeanWindow(solar, 11, 13).GramsPerKilowattHour()
	if midday >= 380 {
		t.Errorf("solar midday mean = %v, want < 380", midday)
	}
}

func TestMeanWindowWrapsAndMatchesNumeric(t *testing.T) {
	prof := EveningPeak(units.GramsPerKilowattHour(500))
	// Whole-hour wrap: 11 pm to 1 am = average of hours 23 and 0.
	got := MeanWindow(prof, 23, 25).GramsPerKilowattHour()
	want := (prof.Hours[23].GramsPerKilowattHour() + prof.Hours[0].GramsPerKilowattHour()) / 2
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("wrap window mean = %v, want %v", got, want)
	}
	// Fractional windows fall back to the numeric path and stay close.
	frac := MeanWindow(prof, 20.5, 21.5).GramsPerKilowattHour()
	lo := math.Min(prof.Hours[20].GramsPerKilowattHour(), prof.Hours[21].GramsPerKilowattHour())
	hi := math.Max(prof.Hours[20].GramsPerKilowattHour(), prof.Hours[21].GramsPerKilowattHour())
	if frac < lo-1e-6 || frac > hi+1e-6 {
		t.Errorf("fractional window mean %v outside [%v, %v]", frac, lo, hi)
	}
}

func TestMeanWindowToleratesHourDrift(t *testing.T) {
	// Regression for the exact == math.Trunc whole-hour gate flagged by
	// ppatcvet's floatcmp: window bounds computed arithmetically land a
	// few ulps off the integer and used to fall onto the 2400-step
	// numeric path. Drifted bounds must now hit the exact hourly
	// average, byte-identical to the clean-integer call.
	prof := EveningPeak(units.GramsPerKilowattHour(500))
	exact := MeanWindow(prof, 18, 22)
	const drift = 3e-12
	for _, bounds := range [][2]float64{
		{18 + drift, 22 - drift},
		{18 - drift, 22 + drift},
		{6 * 3.0, 22}, // product that may not be exactly 18
	} {
		got := MeanWindow(prof, bounds[0], bounds[1])
		if got != exact {
			t.Errorf("MeanWindow(%v, %v) = %v, want exact-path %v",
				bounds[0], bounds[1], got, exact)
		}
	}
	// Genuinely fractional bounds still take the numeric path.
	if frac := MeanWindow(prof, 18.5, 22); frac == exact {
		t.Errorf("fractional window unexpectedly matched the exact path")
	}
}

func TestPeakHoursTieBreakDeterministic(t *testing.T) {
	// Pins the suppressed exact comparison in PeakHours' sort: on a
	// flat profile every window ties, and the tie-break must pick the
	// earliest start rather than whatever order sort.Slice visits.
	flat := &HourlyProfile{Name: "flat"}
	for i := range flat.Hours {
		flat.Hours[i] = units.GramsPerKilowattHour(400)
	}
	for n := 1; n <= 4; n++ {
		start, end := PeakHours(flat, n)
		if start != 0 || end != n%24 {
			t.Errorf("PeakHours(flat, %d) = (%d, %d), want (0, %d)", n, start, end, n%24)
		}
	}
}

func TestPeakHours(t *testing.T) {
	prof := EveningPeak(units.GramsPerKilowattHour(380))
	start, end := PeakHours(prof, 2)
	// The evening-peak shape is highest at 18-21; a 2-hour window should
	// start at 18 or 19.
	if start != 18 && start != 19 {
		t.Errorf("peak window starts at %d, want 18 or 19", start)
	}
	if end != (start+2)%24 {
		t.Errorf("end = %d, want start+2 mod 24", end)
	}
}

func TestTotalType(t *testing.T) {
	tot := Total{Embodied: units.GramsCO2e(3.11), Operational: units.GramsCO2e(2.0)}
	if got := tot.TC().Grams(); !almostEqual(got, 5.11, 1e-12) {
		t.Errorf("tC = %v, want 5.11", got)
	}
	if !tot.EmbodiedDominates() {
		t.Error("embodied should dominate at 3.11 vs 2.0")
	}
	tot.Operational = units.GramsCO2e(4)
	if tot.EmbodiedDominates() {
		t.Error("operational should dominate at 3.11 vs 4.0")
	}
}

func TestExtensionHooks(t *testing.T) {
	w := LitersPerSquareCentimeter(8) // ~8 L/cm² is a typical fab figure
	if got := w.Over(waferArea); !almostEqual(got, 8*math.Pi*225, 1e-9) {
		t.Errorf("water = %v L", got)
	}
	c := DollarsPerSquareCentimeter(15)
	if got := c.Over(waferArea); !almostEqual(got, 15*math.Pi*225, 1e-9) {
		t.Errorf("cost = %v USD", got)
	}
}

// Property: operational carbon is linear in power and in lifetime.
func TestOperationalLinearity(t *testing.T) {
	u := UsagePattern{StartHour: 20, HoursPerDay: 2, Lifetime: 24}
	prof := Flat(GridUS)
	f := func(mw uint16) bool {
		p := units.Milliwatts(float64(mw) / 100)
		c1, err1 := Operational(p, u, prof)
		c2, err2 := Operational(2*p, u, prof)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(2*c1.Grams(), c2.Grams(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(months uint8) bool {
		if months == 0 {
			return true
		}
		ua := u
		ua.Lifetime = units.Months(months)
		ub := u
		ub.Lifetime = units.Months(2 * float64(months))
		c1, err1 := Operational(units.Milliwatts(5), ua, prof)
		c2, err2 := Operational(units.Milliwatts(5), ub, prof)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(2*c1.Grams(), c2.Grams(), 1e-9)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: per-good-die carbon decreases monotonically with yield.
func TestPerGoodDieMonotonicInYield(t *testing.T) {
	f := func(y1, y2 float64) bool {
		y1 = 0.05 + 0.9*math.Abs(math.Mod(y1, 1))
		y2 = 0.05 + 0.9*math.Abs(math.Mod(y2, 1))
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		c1, err1 := PerGoodDie(units.KilogramsCO2e(1000), 1000, y1)
		c2, err2 := PerGoodDie(units.KilogramsCO2e(1000), 1000, y2)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 >= c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOperationalWithStandby(t *testing.T) {
	u := UsagePattern{StartHour: 20, HoursPerDay: 2, Lifetime: 24}
	prof := Flat(GridUS)
	active := units.Milliwatts(9.714)
	// Zero standby reduces to Eq. 8.
	base, err := Operational(active, u, prof)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OperationalWithStandby(active, 0, u, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Grams(), base.Grams(), 1e-12) {
		t.Errorf("zero standby: %v != %v", got, base)
	}
	// With a flat profile, standby carbon is P_standby × off-hours × CI.
	standby := units.Microwatts(800)
	got, err = OperationalWithStandby(active, standby, u, prof)
	if err != nil {
		t.Fatal(err)
	}
	offHours := 24 * units.HoursPerMonth * 22.0 / 24.0
	wantExtra := 0.8e-3 * offHours * 380 / 1000
	if !almostEqual(got.Grams()-base.Grams(), wantExtra, 1e-9) {
		t.Errorf("standby carbon = %v g, want %v", got.Grams()-base.Grams(), wantExtra)
	}
	// An 800 µW standby over 22 h/day dwarfs 2 h/day at ~10 mW? No — but
	// it must be a significant fraction: standby/active carbon ratio =
	// (0.8e-3×22)/(9.714e-3×2) ≈ 0.9.
	ratio := (got.Grams() - base.Grams()) / base.Grams()
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("standby/active carbon ratio = %.2f, want ≈0.9", ratio)
	}
	// Validation.
	if _, err := OperationalWithStandby(-1, 0, u, prof); err == nil {
		t.Error("negative active power should fail")
	}
	if _, err := OperationalWithStandby(1, -1, u, prof); err == nil {
		t.Error("negative standby power should fail")
	}
}

func TestOperationalStandbyDiurnalWindows(t *testing.T) {
	// With an evening-peak profile, the standby window (10 pm - 8 pm) has
	// lower mean CI than the 8-10 pm active window, so standby grams per
	// watt-hour are cheaper than active ones.
	prof := EveningPeak(GridUS.Intensity)
	activeCI := MeanWindow(prof, 20, 22).GramsPerKilowattHour()
	standbyCI := MeanWindow(prof, 22, 44).GramsPerKilowattHour()
	if standbyCI >= activeCI {
		t.Errorf("standby window CI %v should be below evening-peak active %v", standbyCI, activeCI)
	}
}

func TestStandbyBreakEven(t *testing.T) {
	u := UsagePattern{StartHour: 20, HoursPerDay: 2, Lifetime: 24}
	prof := Flat(GridUS)
	active := units.Milliwatts(9.714)
	be, err := StandbyBreakEven(active, u, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Flat profile: break-even standby = active × (2/22).
	want := 9.714e-3 * 2 / 22
	if !almostEqual(be.Watts(), want, 1e-9) {
		t.Errorf("break-even = %v W, want %v", be.Watts(), want)
	}
	// Verify: at the break-even standby, total = 2× base.
	base, _ := Operational(active, u, prof)
	tot, err := OperationalWithStandby(active, be, u, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tot.Grams(), 2*base.Grams(), 1e-9) {
		t.Errorf("at break-even total %v != 2×%v", tot.Grams(), base.Grams())
	}
	// Validation.
	if _, err := StandbyBreakEven(0, u, prof); err == nil {
		t.Error("zero active power should fail")
	}
	full := UsagePattern{StartHour: 0, HoursPerDay: 24, Lifetime: 24}
	if _, err := StandbyBreakEven(active, full, prof); err == nil {
		t.Error("always-on pattern should fail")
	}
}
