// Package carbon implements the total-carbon accounting of the PPAtC
// framework: embodied carbon of fabrication (Eq. 2 of the paper), operational
// carbon of use (Eqs. 1, 6-8), per-good-die amortization (Eq. 5), energy-grid
// carbon intensities, and diurnal carbon-intensity profiles.
package carbon

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ppatc/internal/units"
)

// Grid describes an electricity supply with its carbon intensity. The paper
// evaluates fabrication (CI_fab) and use (CI_use) against four grids whose
// intensities come from Electricity Maps and reference [4].
type Grid struct {
	// Name identifies the grid ("US", "Coal", "Solar", "Taiwan").
	Name string
	// Intensity is the average carbon intensity of delivered energy.
	Intensity units.CarbonIntensity
}

// Canonical grids from the paper (Fig. 2c caption), in gCO2e/kWh.
var (
	GridUS     = Grid{Name: "US", Intensity: units.GramsPerKilowattHour(380)}
	GridCoal   = Grid{Name: "Coal", Intensity: units.GramsPerKilowattHour(820)}
	GridSolar  = Grid{Name: "Solar", Intensity: units.GramsPerKilowattHour(48)}
	GridTaiwan = Grid{Name: "Taiwan", Intensity: units.GramsPerKilowattHour(563)}
)

// Grids returns the four canonical grids in the paper's presentation order.
func Grids() []Grid {
	return []Grid{GridUS, GridCoal, GridSolar, GridTaiwan}
}

// CustomGrid builds a user-defined grid from a name and carbon intensity —
// the extension point the paper leaves open for supplies beyond its four
// (a wind-powered fab, a projected 2035 mix, a measured regional average).
func CustomGrid(name string, intensity units.CarbonIntensity) Grid {
	return Grid{Name: name, Intensity: intensity}
}

// GridByName looks a canonical grid up by name, case-insensitively.
func GridByName(name string) (Grid, error) {
	for _, g := range Grids() {
		if strings.EqualFold(g.Name, name) {
			return g, nil
		}
	}
	names := make([]string, 0, 4)
	for _, g := range Grids() {
		names = append(names, g.Name)
	}
	return Grid{}, fmt.Errorf("carbon: unknown grid %q (valid: %s)", name, strings.Join(names, ", "))
}

// Profile models the time variation of use-phase carbon intensity CI_use(t)
// across a day. Hour is a local time of day in [0, 24).
type Profile interface {
	// At reports the carbon intensity at the given hour of day.
	At(hour float64) units.CarbonIntensity
	// Mean reports the all-day average intensity.
	Mean() units.CarbonIntensity
}

// FlatProfile is a time-invariant CI_use, the baseline assumption when only
// a grid average is known.
type FlatProfile struct {
	Intensity units.CarbonIntensity
}

// At implements Profile.
func (p FlatProfile) At(float64) units.CarbonIntensity { return p.Intensity }

// Mean implements Profile.
func (p FlatProfile) Mean() units.CarbonIntensity { return p.Intensity }

// Flat wraps a grid's average intensity into a constant profile.
func Flat(g Grid) FlatProfile { return FlatProfile{Intensity: g.Intensity} }

// scaledProfile multiplies a base profile by a constant factor.
type scaledProfile struct {
	base   Profile
	factor float64
}

// At implements Profile.
func (p scaledProfile) At(hour float64) units.CarbonIntensity {
	return units.CarbonIntensity(float64(p.base.At(hour)) * p.factor)
}

// Mean implements Profile.
func (p scaledProfile) Mean() units.CarbonIntensity {
	return units.CarbonIntensity(float64(p.base.Mean()) * p.factor)
}

// Scaled multiplies every intensity of a profile by a constant factor —
// the CI_use perturbation of the paper's Fig. 6b ("CI_use within 3×
// either way") and of Monte Carlo uncertainty axes.
func Scaled(p Profile, factor float64) Profile {
	return scaledProfile{base: p, factor: factor}
}

// HourlyProfile is a piecewise-constant CI_use with one value per hour of
// day, the shape published by grid observatories such as Electricity Maps.
type HourlyProfile struct {
	// Name labels the profile shape.
	Name string
	// Hours holds 24 intensities; Hours[h] applies on [h, h+1).
	Hours [24]units.CarbonIntensity
}

// At implements Profile.
func (p *HourlyProfile) At(hour float64) units.CarbonIntensity {
	h := int(math.Floor(math.Mod(hour, 24)))
	if h < 0 {
		h += 24
	}
	return p.Hours[h]
}

// Mean implements Profile.
func (p *HourlyProfile) Mean() units.CarbonIntensity {
	var sum float64
	for _, v := range p.Hours {
		sum += float64(v)
	}
	return units.CarbonIntensity(sum / 24)
}

// MeanWindow reports the average intensity over the daily window
// [startHour, endHour). Windows may wrap midnight (start > end).
func (p *HourlyProfile) MeanWindow(startHour, endHour float64) units.CarbonIntensity {
	return meanWindow(p, startHour, endHour)
}

// meanWindow numerically averages any profile over a daily window, sampling
// on a fine grid so that piecewise-constant and smooth profiles are both
// handled. Windows may wrap midnight.
func meanWindow(p Profile, startHour, endHour float64) units.CarbonIntensity {
	span := endHour - startHour
	if span <= 0 {
		span += 24
	}
	const steps = 2400
	var sum float64
	for i := 0; i < steps; i++ {
		h := startHour + span*(float64(i)+0.5)/steps
		sum += float64(p.At(h))
	}
	return units.CarbonIntensity(sum / steps)
}

// wholeHour reports h as an integral hour when it is one up to the
// float drift of callers that compute window bounds arithmetically
// (month offsets, wrapped windows). An exact == math.Trunc gate here
// used to bounce 17.999999999… onto the 2400-step numeric path.
func wholeHour(h float64) (int, bool) {
	r := math.Round(h)
	if math.Abs(h-r) < 1e-9 {
		return int(r), true
	}
	return 0, false
}

// MeanWindow averages an arbitrary profile over a daily window.
func MeanWindow(p Profile, startHour, endHour float64) units.CarbonIntensity {
	hp, hourly := p.(*HourlyProfile)
	s, sOK := wholeHour(startHour)
	e, eOK := wholeHour(endHour)
	if hourly && sOK && eOK {
		// Exact average over whole-hour windows.
		n := e - s
		if n <= 0 {
			n += 24
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(hp.Hours[(s+i)%24])
		}
		return units.CarbonIntensity(sum / float64(n))
	}
	return meanWindow(p, startHour, endHour)
}

// EveningPeak builds an hourly profile with the given daily mean whose shape
// has a fossil-heavy evening peak (the typical load-following shape of
// thermal-backed grids): intensity rises through the evening as solar output
// falls and peaker plants come online.
func EveningPeak(mean units.CarbonIntensity) *HourlyProfile {
	// Relative shape, normalized below to the requested mean.
	shape := [24]float64{
		0.95, 0.93, 0.91, 0.90, 0.90, 0.92, // 00-06: overnight trough
		0.97, 1.02, 1.00, 0.94, 0.88, 0.84, // 06-12: morning ramp, midday solar dip
		0.82, 0.82, 0.85, 0.90, 0.98, 1.08, // 12-18: solar fades
		1.18, 1.22, 1.20, 1.12, 1.04, 0.98, // 18-24: evening peak (8-10pm highest)
	}
	return normalizedProfile("evening-peak", shape, mean)
}

// SolarDay builds an hourly profile with the given daily mean whose shape is
// solar-dominated: low intensity through daylight hours and high at night.
func SolarDay(mean units.CarbonIntensity) *HourlyProfile {
	shape := [24]float64{
		1.45, 1.45, 1.45, 1.45, 1.45, 1.40,
		1.20, 0.90, 0.65, 0.50, 0.42, 0.40,
		0.40, 0.42, 0.48, 0.60, 0.80, 1.05,
		1.30, 1.42, 1.45, 1.45, 1.45, 1.45,
	}
	return normalizedProfile("solar-day", shape, mean)
}

func normalizedProfile(name string, shape [24]float64, mean units.CarbonIntensity) *HourlyProfile {
	var sum float64
	for _, v := range shape {
		sum += v
	}
	scale := float64(mean) * 24 / sum
	p := &HourlyProfile{Name: name}
	for i, v := range shape {
		p.Hours[i] = units.CarbonIntensity(v * scale)
	}
	return p
}

// PeakHours reports the n consecutive whole hours of the day with the
// highest average intensity, returned as [start, end) hours. Useful for
// locating a profile's worst usage window.
func PeakHours(p Profile, n int) (start, end int) {
	if n <= 0 || n > 24 {
		n = 1
	}
	type window struct {
		start int
		mean  float64
	}
	var wins []window
	for s := 0; s < 24; s++ {
		m := float64(MeanWindow(p, float64(s), float64(s+n)))
		wins = append(wins, window{s, m})
	}
	sort.Slice(wins, func(i, j int) bool {
		//ppatcvet:ignore floatcmp sort tie-break: exact inequality only chooses between equally valid orders
		if wins[i].mean != wins[j].mean {
			return wins[i].mean > wins[j].mean
		}
		return wins[i].start < wins[j].start
	})
	return wins[0].start, (wins[0].start + n) % 24
}
