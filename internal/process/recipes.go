package process

import "fmt"

// MetalPatterning identifies how a metal/via pair at a given pitch is
// patterned. Pitch determines patterning per the ASAP7 assumptions the
// paper follows: 36 nm needs a single EUV exposure per layer, 48 nm is
// modeled with the 42 nm self-aligned double patterning (SADP) DUV energy,
// 64 nm uses litho-etch-litho-etch (LELE) DUV, and 80 nm is single DUV.
type MetalPatterning int

// Patterning schemes for metal/via pairs.
const (
	// PatternEUV is single-exposure EUV patterning (36 nm pitch).
	PatternEUV MetalPatterning = iota
	// PatternSADP is self-aligned double patterning with DUV (42/48 nm pitch).
	PatternSADP
	// PatternLELE is litho-etch-litho-etch double patterning (64 nm pitch).
	PatternLELE
	// PatternSingleDUV is single-exposure DUV (80 nm pitch).
	PatternSingleDUV
)

// PatterningForPitch maps a metal pitch in nanometers to its patterning
// scheme, following Sec. II-C: "For layers with 48 nm pitch, we use the
// fabrication energy of a metal layer with 42 nm pitch."
func PatterningForPitch(pitchNM int) (MetalPatterning, error) {
	switch pitchNM {
	case 36:
		return PatternEUV, nil
	case 42, 48:
		return PatternSADP, nil
	case 64:
		return PatternLELE, nil
	case 80:
		return PatternSingleDUV, nil
	default:
		return 0, fmt.Errorf("process: no patterning data for %d nm pitch", pitchNM)
	}
}

// MetalViaPair returns the segment fabricating one metal layer plus its
// underlying via layer at the given pitch. The step lists follow the
// dual-damascene sequence: dielectric deposition, via and trench patterning
// and etch, barrier/seed and fill metallization, CMP, and inline metrology.
func MetalViaPair(name string, pitchNM int) (Segment, error) {
	pat, err := PatterningForPitch(pitchNM)
	if err != nil {
		return Segment{}, err
	}
	label := func(s string) string { return fmt.Sprintf("%s %s", name, s) }
	var steps []Step
	add := func(s string, a Area, l Litho) {
		steps = append(steps, Step{Name: label(s), Area: a, Litho: l})
	}
	switch pat {
	case PatternEUV:
		// 2 EUV exposures (via + trench); 4 kWh of deposition over 3 steps
		// is the paper's worked example for this recipe (Fig. 2d).
		add("ILD deposition", Deposition, LithoNone)
		add("etch-stop deposition", Deposition, LithoNone)
		add("via litho", Lithography, LithoEUV)
		add("via etch", DryEtch, LithoNone)
		add("trench litho", Lithography, LithoEUV)
		add("trench etch", DryEtch, LithoNone)
		add("barrier open etch", DryEtch, LithoNone)
		add("descum", DryEtch, LithoNone)
		add("post-etch clean", WetEtch, LithoNone)
		add("barrier/seed", Metallization, LithoNone)
		add("Cu fill", Metallization, LithoNone)
		add("CMP", WetEtch, LithoNone)
		add("cap deposition", Deposition, LithoNone)
		add("overlay metrology", Metrology, LithoNone)
		add("CD metrology", Metrology, LithoNone)
		add("defect inspection", Metrology, LithoNone)
		add("film metrology", Metrology, LithoNone)
	case PatternSADP:
		// Mandrel + spacer + block + via: 3 DUV exposures, extra spacer
		// deposition/etch and mandrel pull.
		add("ILD deposition", Deposition, LithoNone)
		add("etch-stop deposition", Deposition, LithoNone)
		add("mandrel film deposition", Deposition, LithoNone)
		add("mandrel litho", Lithography, LithoDUV)
		add("mandrel etch", DryEtch, LithoNone)
		add("spacer deposition", Deposition, LithoNone)
		add("spacer etch", DryEtch, LithoNone)
		add("mandrel pull", WetEtch, LithoNone)
		add("block litho", Lithography, LithoDUV)
		add("block etch", DryEtch, LithoNone)
		add("via litho", Lithography, LithoDUV)
		add("via etch", DryEtch, LithoNone)
		add("trench etch", DryEtch, LithoNone)
		add("descum", DryEtch, LithoNone)
		add("post-etch clean", WetEtch, LithoNone)
		add("barrier/seed", Metallization, LithoNone)
		add("Cu fill", Metallization, LithoNone)
		add("CMP", WetEtch, LithoNone)
		add("cap deposition", Deposition, LithoNone)
		add("overlay metrology", Metrology, LithoNone)
		add("CD metrology", Metrology, LithoNone)
		add("defect inspection", Metrology, LithoNone)
		add("film metrology", Metrology, LithoNone)
		add("spacer metrology", Metrology, LithoNone)
	case PatternLELE:
		// Two interleaved litho/etch passes plus the via.
		add("ILD deposition", Deposition, LithoNone)
		add("etch-stop deposition", Deposition, LithoNone)
		add("LE1 litho", Lithography, LithoDUV)
		add("LE1 etch", DryEtch, LithoNone)
		add("LE2 litho", Lithography, LithoDUV)
		add("LE2 etch", DryEtch, LithoNone)
		add("via litho", Lithography, LithoDUV)
		add("via etch", DryEtch, LithoNone)
		add("trench etch", DryEtch, LithoNone)
		add("descum", DryEtch, LithoNone)
		add("post-etch clean", WetEtch, LithoNone)
		add("barrier/seed", Metallization, LithoNone)
		add("Cu fill", Metallization, LithoNone)
		add("CMP", WetEtch, LithoNone)
		add("cap deposition", Deposition, LithoNone)
		add("overlay metrology", Metrology, LithoNone)
		add("CD metrology", Metrology, LithoNone)
		add("defect inspection", Metrology, LithoNone)
		add("film metrology", Metrology, LithoNone)
	case PatternSingleDUV:
		add("ILD deposition", Deposition, LithoNone)
		add("etch-stop deposition", Deposition, LithoNone)
		add("via litho", Lithography, LithoDUV)
		add("via etch", DryEtch, LithoNone)
		add("trench litho", Lithography, LithoDUV)
		add("trench etch", DryEtch, LithoNone)
		add("descum", DryEtch, LithoNone)
		add("post-etch clean", WetEtch, LithoNone)
		add("barrier/seed", Metallization, LithoNone)
		add("Cu fill", Metallization, LithoNone)
		add("CMP", WetEtch, LithoNone)
		add("cap deposition", Deposition, LithoNone)
		add("overlay metrology", Metrology, LithoNone)
		add("CD metrology", Metrology, LithoNone)
		add("defect inspection", Metrology, LithoNone)
	}
	return Segment{Name: fmt.Sprintf("%s (%d nm pitch)", name, pitchNM), Steps: steps}, nil
}

// CNFETTier returns the segment fabricating one tier of carbon-nanotube
// FETs in the BEOL, following the paper's flow (Sec. II-C): oxide
// deposition; CNT deposition by wet-processing incubation (~2 nm film);
// active-region patterning and O2-plasma dry etch; source/drain electrode
// patterning and deposition (40 nm); high-k dielectric (2 nm); gate metal
// patterning and deposition (30 nm gate length); wet etch to expose
// source/drain; and vias to the metal layer above. Gate and via levels are
// 7 nm-node critical dimensions requiring EUV; active and S/D levels relax
// to DUV.
func CNFETTier(name string) Segment {
	label := func(s string) string { return fmt.Sprintf("%s %s", name, s) }
	mk := func(s string, a Area, l Litho) Step {
		return Step{Name: label(s), Area: a, Litho: l}
	}
	return Segment{
		Name: name,
		Steps: []Step{
			mk("isolation oxide deposition", Deposition, LithoNone),
			mk("CNT incubation deposition", Deposition, LithoNone),
			mk("active litho", Lithography, LithoDUV),
			mk("active O2 plasma etch", DryEtch, LithoNone),
			mk("S/D litho", Lithography, LithoDUV),
			mk("S/D electrode deposition", Metallization, LithoNone),
			mk("high-k dielectric deposition", Deposition, LithoNone),
			mk("gate litho", Lithography, LithoEUV),
			mk("gate etch", DryEtch, LithoNone),
			mk("gate metal deposition", Metallization, LithoNone),
			mk("S/D exposure wet etch", WetEtch, LithoNone),
			mk("post-process clean", WetEtch, LithoNone),
			mk("via litho", Lithography, LithoEUV),
			mk("via etch", DryEtch, LithoNone),
			mk("via fill", Metallization, LithoNone),
			mk("overlay metrology", Metrology, LithoNone),
			mk("CD metrology", Metrology, LithoNone),
			mk("defect inspection", Metrology, LithoNone),
			mk("film metrology", Metrology, LithoNone),
		},
	}
}

// IGZOTier returns the segment fabricating one tier of IGZO FETs in the
// BEOL. It mirrors the CNFET tier with two differences from the paper:
// IGZO deposition uses RF sputtering (10 nm film), and the active region is
// patterned with a wet etch instead of an O2 plasma.
func IGZOTier(name string) Segment {
	label := func(s string) string { return fmt.Sprintf("%s %s", name, s) }
	mk := func(s string, a Area, l Litho) Step {
		return Step{Name: label(s), Area: a, Litho: l}
	}
	return Segment{
		Name: name,
		Steps: []Step{
			mk("isolation oxide deposition", Deposition, LithoNone),
			mk("IGZO RF sputter deposition", Deposition, LithoNone),
			mk("active litho", Lithography, LithoDUV),
			mk("active wet etch", WetEtch, LithoNone),
			mk("S/D litho", Lithography, LithoDUV),
			mk("S/D electrode deposition", Metallization, LithoNone),
			mk("high-k dielectric deposition", Deposition, LithoNone),
			mk("gate litho", Lithography, LithoEUV),
			mk("gate etch", DryEtch, LithoNone),
			mk("gate metal deposition", Metallization, LithoNone),
			mk("S/D exposure wet etch", WetEtch, LithoNone),
			mk("post-process clean", WetEtch, LithoNone),
			mk("via litho", Lithography, LithoEUV),
			mk("via etch", DryEtch, LithoNone),
			mk("via fill", Metallization, LithoNone),
			mk("overlay metrology", Metrology, LithoNone),
			mk("CD metrology", Metrology, LithoNone),
			mk("defect inspection", Metrology, LithoNone),
			mk("film metrology", Metrology, LithoNone),
		},
	}
}
