package process

import (
	"errors"
	"fmt"

	"ppatc/internal/units"
)

// M3DConfig parameterizes a generalized monolithic-3D flow, for exploring
// how embodied carbon scales with the number of stacked device tiers —
// the "which technology directions to pursue" question the paper poses.
type M3DConfig struct {
	// CNFETTiers and IGZOTiers count the stacked BEOL device tiers.
	CNFETTiers, IGZOTiers int
	// InterTierMetals is the number of 36 nm metal/via pairs between
	// consecutive tiers (2 in the paper's flow).
	InterTierMetals int
	// BaseMetals is the number of ASAP7 base metal layers before the
	// first tier (4 in the paper's flow).
	BaseMetals int
	// TopMetals lists the pitches (nm) of the metal layers above the
	// last tier's local interconnect.
	TopMetals []int
}

// PaperM3DConfig reproduces the paper's stack: 2 CNFET tiers + 1 IGZO
// tier over M1-M4, two 36 nm layers between tiers and above the IGZO, and
// M11-M15 on top.
func PaperM3DConfig() M3DConfig {
	return M3DConfig{
		CNFETTiers:      2,
		IGZOTiers:       1,
		InterTierMetals: 2,
		BaseMetals:      4,
		TopMetals:       []int{48, 64, 64, 80, 80},
	}
}

// Validate checks the configuration.
func (c M3DConfig) Validate() error {
	switch {
	case c.CNFETTiers < 0 || c.IGZOTiers < 0:
		return errors.New("process: tier counts must be non-negative")
	case c.CNFETTiers+c.IGZOTiers == 0:
		return errors.New("process: an M3D flow needs at least one device tier")
	case c.InterTierMetals < 1:
		return errors.New("process: need at least one metal layer per tier")
	case c.BaseMetals < 1 || c.BaseMetals > 9:
		return errors.New("process: base metals must be 1-9")
	}
	for _, p := range c.TopMetals {
		if _, err := PatterningForPitch(p); err != nil {
			return err
		}
	}
	return nil
}

// BuildM3D assembles the generalized M3D flow: FEOL, base metals, CNFET
// tiers (each followed by its inter-tier metals), IGZO tiers, then the top
// metals.
func BuildM3D(c M3DConfig) (*Flow, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	f := &Flow{Name: fmt.Sprintf("M3D %dxCNFET+%dxIGZO 7nm", c.CNFETTiers, c.IGZOTiers)}
	f.Segments = append(f.Segments, Segment{
		Name:        "FEOL+MOL (Si FinFET, iN7 reference)",
		FixedEnergy: units.KilowattHours(FEOLEnergyKWh),
	})
	metal := 0
	mv := func(pitch int) error {
		metal++
		seg, err := MetalViaPair(fmt.Sprintf("M%d", metal), pitch)
		if err != nil {
			return err
		}
		f.Segments = append(f.Segments, seg)
		return nil
	}
	for m := 1; m <= c.BaseMetals; m++ {
		if err := mv(asap7Pitch[m]); err != nil {
			return nil, err
		}
	}
	addTierMetals := func() error {
		for i := 0; i < c.InterTierMetals; i++ {
			if err := mv(36); err != nil {
				return err
			}
		}
		return nil
	}
	for t := 1; t <= c.CNFETTiers; t++ {
		f.Segments = append(f.Segments, CNFETTier(fmt.Sprintf("CNFET tier %d", t)))
		if err := addTierMetals(); err != nil {
			return nil, err
		}
	}
	for t := 1; t <= c.IGZOTiers; t++ {
		f.Segments = append(f.Segments, IGZOTier(fmt.Sprintf("IGZO tier %d", t)))
		if err := addTierMetals(); err != nil {
			return nil, err
		}
	}
	for _, p := range c.TopMetals {
		if err := mv(p); err != nil {
			return nil, err
		}
	}
	return f, nil
}
