// Package process models semiconductor fabrication flows as sequences of
// process steps and computes their fabrication energy per wafer (EPA), the
// quantity at the core of the paper's embodied-carbon model (Sec. II-C).
//
// Following reference [4] of the paper (Bardon et al., IEDM 2020), every
// step is classified into one of six process areas — dry etch, lithography,
// metallization, metrology, wet etch, deposition — and the energy of a flow
// is the matrix product of per-area step counts with per-step energies
// (Eq. 4 of the paper). Lithography energy additionally depends on the
// patterning method (EUV vs. 193i DUV).
package process

import (
	"errors"
	"fmt"
	"sort"

	"ppatc/internal/units"
)

// Area classifies a fabrication step into one of the six process areas of
// reference [4].
type Area int

// The six process areas, in the order the paper's Eq. 4 lists them.
const (
	DryEtch Area = iota
	Lithography
	Metallization
	Metrology
	WetEtch
	Deposition
	numAreas
)

// Areas returns all process areas in canonical order.
func Areas() []Area {
	return []Area{DryEtch, Lithography, Metallization, Metrology, WetEtch, Deposition}
}

// String implements fmt.Stringer.
func (a Area) String() string {
	switch a {
	case DryEtch:
		return "dry etch"
	case Lithography:
		return "lithography"
	case Metallization:
		return "metallization"
	case Metrology:
		return "metrology"
	case WetEtch:
		return "wet etch"
	case Deposition:
		return "deposition"
	default:
		return fmt.Sprintf("Area(%d)", int(a))
	}
}

// Litho identifies the patterning method of a lithography step; it selects
// the per-exposure energy. Non-lithography steps use LithoNone.
type Litho int

// Patterning methods.
const (
	// LithoNone marks a non-lithography step.
	LithoNone Litho = iota
	// LithoEUV is a single extreme-ultraviolet exposure.
	LithoEUV
	// LithoDUV is a single 193 nm immersion exposure.
	LithoDUV
)

// String implements fmt.Stringer.
func (l Litho) String() string {
	switch l {
	case LithoNone:
		return "none"
	case LithoEUV:
		return "EUV"
	case LithoDUV:
		return "DUV-193i"
	default:
		return fmt.Sprintf("Litho(%d)", int(l))
	}
}

// Step is a single fabrication operation on the wafer.
type Step struct {
	// Name describes the operation (e.g. "M1 trench etch").
	Name string
	// Area is the process area the step belongs to.
	Area Area
	// Litho is the patterning method for Lithography steps; must be
	// LithoNone for every other area.
	Litho Litho
}

// Validate checks the step's area/litho consistency.
func (s Step) Validate() error {
	if s.Area < 0 || s.Area >= numAreas {
		return fmt.Errorf("process: step %q has invalid area %d", s.Name, int(s.Area))
	}
	if s.Area == Lithography && s.Litho == LithoNone {
		return fmt.Errorf("process: lithography step %q must name a patterning method", s.Name)
	}
	if s.Area != Lithography && s.Litho != LithoNone {
		return fmt.Errorf("process: non-lithography step %q must not name a patterning method", s.Name)
	}
	return nil
}

// Segment is a named group of steps within a flow — a metal/via layer, a
// device tier, or an opaque lump with externally sourced energy (the FEOL,
// whose 436 kWh/wafer comes directly from reference [4] rather than from
// step-level accounting).
type Segment struct {
	// Name identifies the segment ("M1 (36 nm)", "CNFET tier 1", "FEOL+MOL").
	Name string
	// Steps are the constituent operations; empty for fixed-energy lumps.
	Steps []Step
	// FixedEnergy, when nonzero, is the segment's per-wafer energy taken
	// from external data instead of step-level accounting.
	FixedEnergy units.Energy
}

// Validate checks segment consistency.
func (s Segment) Validate() error {
	if len(s.Steps) > 0 && s.FixedEnergy != 0 {
		return fmt.Errorf("process: segment %q has both steps and fixed energy", s.Name)
	}
	if len(s.Steps) == 0 && s.FixedEnergy == 0 {
		return fmt.Errorf("process: segment %q is empty", s.Name)
	}
	if s.FixedEnergy < 0 {
		return fmt.Errorf("process: segment %q has negative fixed energy", s.Name)
	}
	for _, st := range s.Steps {
		if err := st.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Flow is a complete fabrication process for one wafer, front to back.
type Flow struct {
	// Name identifies the process ("all-Si 7nm", "M3D IGZO/CNFET/Si 7nm").
	Name string
	// Segments are executed in order.
	Segments []Segment
}

// Validate checks the whole flow.
func (f *Flow) Validate() error {
	if f.Name == "" {
		return errors.New("process: flow must be named")
	}
	if len(f.Segments) == 0 {
		return fmt.Errorf("process: flow %q has no segments", f.Name)
	}
	for _, seg := range f.Segments {
		if err := seg.Validate(); err != nil {
			return fmt.Errorf("flow %q: %w", f.Name, err)
		}
	}
	return nil
}

// StepCounts tallies the flow's steps per (area, litho) bucket — one column
// of the N matrix in Eq. 4. Fixed-energy segments contribute no counts.
type StepCounts struct {
	// ByArea counts steps per process area (lithography counted once per
	// exposure regardless of method).
	ByArea [numAreas]int
	// EUVExposures and DUVExposures split the Lithography count by method.
	EUVExposures int
	DUVExposures int
}

// Total reports the total number of counted steps.
func (c StepCounts) Total() int {
	var n int
	for _, v := range c.ByArea {
		n += v
	}
	return n
}

// Count tallies step counts for the flow.
func (f *Flow) Count() StepCounts {
	var c StepCounts
	for _, seg := range f.Segments {
		for _, st := range seg.Steps {
			c.ByArea[st.Area]++
			switch st.Litho {
			case LithoEUV:
				c.EUVExposures++
			case LithoDUV:
				c.DUVExposures++
			}
		}
	}
	return c
}

// FixedEnergy sums the externally sourced segment energies (the FEOL lump).
func (f *Flow) FixedEnergy() units.Energy {
	var e units.Energy
	for _, seg := range f.Segments {
		e += seg.FixedEnergy
	}
	return e
}

// EPA computes the flow's fabrication energy per wafer: the Eq. 4 matrix
// product of step counts with the per-step energy table, plus any
// fixed-energy segments.
func (f *Flow) EPA(tbl EnergyTable) (units.Energy, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if err := tbl.Validate(); err != nil {
		return 0, err
	}
	total := f.FixedEnergy()
	for _, seg := range f.Segments {
		for _, st := range seg.Steps {
			total += tbl.StepEnergy(st)
		}
	}
	return total, nil
}

// SegmentEnergy reports the per-segment energy breakdown, useful for
// rendering Fig. 2-style stacked views of where fabrication energy goes.
func (f *Flow) SegmentEnergy(tbl EnergyTable) ([]SegmentEnergy, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	out := make([]SegmentEnergy, 0, len(f.Segments))
	for _, seg := range f.Segments {
		e := seg.FixedEnergy
		for _, st := range seg.Steps {
			e += tbl.StepEnergy(st)
		}
		out = append(out, SegmentEnergy{Name: seg.Name, Energy: e, Steps: len(seg.Steps)})
	}
	return out, nil
}

// SegmentEnergy is one row of a per-segment energy breakdown.
type SegmentEnergy struct {
	Name   string
	Energy units.Energy
	Steps  int
}

// AreaEnergy reports the flow's step energy aggregated per process area —
// the Fig. 2d view. Fixed-energy segments are reported under the empty key.
func (f *Flow) AreaEnergy(tbl EnergyTable) (map[string]units.Energy, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]units.Energy)
	for _, seg := range f.Segments {
		if seg.FixedEnergy != 0 {
			out["fixed (FEOL/MOL)"] += seg.FixedEnergy
		}
		for _, st := range seg.Steps {
			out[st.Area.String()] += tbl.StepEnergy(st)
		}
	}
	return out, nil
}

// SortedAreaNames returns the keys of an AreaEnergy map in canonical order
// (the six areas first, then any extra keys alphabetically).
func SortedAreaNames(m map[string]units.Energy) []string {
	var names []string
	seen := make(map[string]bool)
	for _, a := range Areas() {
		if _, ok := m[a.String()]; ok {
			names = append(names, a.String())
			seen[a.String()] = true
		}
	}
	var rest []string
	for k := range m {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}
