package process

import "errors"

// Water accounting — the first extension the paper's conclusion lists
// ("cost, new materials and processes, alternative memory cell topologies,
// water consumption, and more"). Fab ultrapure-water usage is tracked the
// same way as fabrication energy: liters per step per process area, summed
// over a flow. Wet processing dominates (etch baths, post-etch rinses,
// CMP slurry rinse); lithography develop/rinse and deposition chamber
// cleans follow.

// WaterTable gives liters of ultrapure water per step in each process
// area, plus a fixed charge for the FEOL lump.
type WaterTable struct {
	// PerStep is liters per step per area.
	PerStep map[Area]float64
	// PerLithoExposure is liters per exposure (develop + rinse).
	PerLithoExposure float64
	// FEOLLiters is the water charge of the fixed FEOL/MOL segment.
	FEOLLiters float64
}

// DefaultWaterTable returns per-step water figures consistent with
// published fab-level intensities (ultrapure water on the order of a few
// thousand liters per wafer for a full logic flow).
func DefaultWaterTable() WaterTable {
	return WaterTable{
		PerStep: map[Area]float64{
			DryEtch:       8,  // chamber clean + post-etch rinse
			Metallization: 12, // plating bath + rinse
			Metrology:     1,
			WetEtch:       40, // bath + cascade rinse (dominant)
			Deposition:    6,
		},
		PerLithoExposure: 15, // develop + rinse
		FEOLLiters:       1800,
	}
}

// Validate checks the table covers every area non-negatively.
func (t WaterTable) Validate() error {
	if t.PerStep == nil {
		return errors.New("process: water table has no per-step entries")
	}
	for _, a := range Areas() {
		if a == Lithography {
			continue
		}
		v, ok := t.PerStep[a]
		if !ok {
			return errors.New("process: water table missing area " + a.String())
		}
		if v < 0 {
			return errors.New("process: negative water for area " + a.String())
		}
	}
	if t.PerLithoExposure < 0 || t.FEOLLiters < 0 {
		return errors.New("process: water charges must be non-negative")
	}
	return nil
}

// Water reports the flow's ultrapure-water usage in liters per wafer.
func (f *Flow) Water(t WaterTable) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for _, seg := range f.Segments {
		if seg.FixedEnergy != 0 {
			total += t.FEOLLiters
		}
		for _, st := range seg.Steps {
			if st.Area == Lithography {
				total += t.PerLithoExposure
				continue
			}
			total += t.PerStep[st.Area]
		}
	}
	return total, nil
}
