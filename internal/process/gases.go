package process

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ppatc/internal/units"
)

// Gas-level GPA accounting. The paper computes GPA by scaling the imec
// iN7 figure with the EPA ratio (Eq. 3), because per-gas abatement data is
// only published for full reference flows. This module provides the
// underlying bottom-up view for users who do have fab gas data: an
// inventory of emitted process gases, each weighted by its 100-year
// global-warming potential (GWP-100), exactly how the 0.20 kgCO2e/cm²
// reference number is constructed in the first place ("several gases with
// high global warming potential (e.g., NH3, CH4, N2O) are necessary
// inputs for fabrication processes such as etching and deposition").

// Gas identifies a fab process gas.
type Gas string

// Process gases with published GWP-100 values.
const (
	GasNH3  Gas = "NH3"
	GasCH4  Gas = "CH4"
	GasN2O  Gas = "N2O"
	GasSF6  Gas = "SF6"
	GasNF3  Gas = "NF3"
	GasCF4  Gas = "CF4"
	GasC2F6 Gas = "C2F6"
	GasCHF3 Gas = "CHF3"
)

// gwp100 holds IPCC AR6 100-year global-warming potentials (kgCO2e per kg
// of gas emitted). NH3 is an indirect contributor; the small value covers
// its N2O conversion pathway.
var gwp100 = map[Gas]float64{
	GasNH3:  3,
	GasCH4:  28,
	GasN2O:  273,
	GasSF6:  25200,
	GasNF3:  17400,
	GasCF4:  7380,
	GasC2F6: 12400,
	GasCHF3: 14600,
}

// GWP100 reports a gas's 100-year warming potential.
func GWP100(g Gas) (float64, error) {
	v, ok := gwp100[g]
	if !ok {
		return 0, fmt.Errorf("process: no GWP entry for gas %q", g)
	}
	return v, nil
}

// Gases lists the supported gases alphabetically.
func Gases() []Gas {
	out := make([]Gas, 0, len(gwp100))
	for g := range gwp100 {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GasInventory maps gas → grams emitted (post-abatement) per wafer.
type GasInventory map[Gas]float64

// Carbon reports the inventory's CO2-equivalent per wafer.
func (inv GasInventory) Carbon() (units.Carbon, error) {
	if len(inv) == 0 {
		return 0, errors.New("process: empty gas inventory")
	}
	var grams float64
	for g, mass := range inv {
		if mass < 0 {
			return 0, fmt.Errorf("process: negative mass for %q", g)
		}
		gwp, err := GWP100(g)
		if err != nil {
			return 0, err
		}
		grams += mass * gwp
	}
	return units.GramsCO2e(grams), nil
}

// GPA converts the inventory into a carbon-per-area density for Eq. 2.
func (inv GasInventory) GPA(wafer units.Area) (units.CarbonPerArea, error) {
	if wafer <= 0 {
		return 0, errors.New("process: wafer area must be positive")
	}
	c, err := inv.Carbon()
	if err != nil {
		return 0, err
	}
	return units.CarbonPerArea(c.Grams() / wafer.SquareMeters()), nil
}

// ReferenceIN7Inventory returns a plausible post-abatement gas inventory
// for the iN7 reference flow, scaled so its GPA reproduces the published
// 0.20 kgCO2e/cm² on a 300 mm wafer. The split follows typical logic-fab
// emission inventories: fluorinated etch/clean gases dominate CO2e even
// at small masses because of their enormous GWPs.
func ReferenceIN7Inventory() GasInventory {
	// Target: 200 g/cm² × 706.858 cm² ≈ 141.4 kgCO2e per wafer. Masses
	// are grams per wafer escaping abatement — single-digit grams of the
	// fluorinated species carry tens of kgCO2e each.
	return GasInventory{
		GasNF3:  3.3, // chamber cleans
		GasSF6:  1.14,
		GasCF4:  3.0,
		GasC2F6: 1.4,
		GasCHF3: 0.76,
		GasN2O:  13.3,
		GasCH4:  8.5,
		GasNH3:  20.9,
	}
}

// FormatInventory renders an inventory with per-gas CO2e contributions.
func FormatInventory(inv GasInventory) (string, error) {
	if _, err := inv.Carbon(); err != nil {
		return "", err
	}
	gases := make([]Gas, 0, len(inv))
	for g := range inv {
		gases = append(gases, g)
	}
	sort.Slice(gases, func(i, j int) bool {
		return inv[gases[i]]*gwp100[gases[i]] > inv[gases[j]]*gwp100[gases[j]]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %12s %10s %14s\n", "gas", "g/wafer", "GWP-100", "kgCO2e/wafer")
	for _, g := range gases {
		fmt.Fprintf(&sb, "%-6s %12.0f %10.0f %14.1f\n",
			g, inv[g], gwp100[g], inv[g]*gwp100[g]/1000)
	}
	total, _ := inv.Carbon()
	fmt.Fprintf(&sb, "%-6s %12s %10s %14.1f\n", "total", "", "", total.Kilograms())
	return sb.String(), nil
}
