package process

import (
	"errors"

	"ppatc/internal/units"
)

// EnergyTable gives the per-wafer electrical energy of one fabrication step
// in each process area, in the style of the paper's Fig. 2d: the total
// energy reported for a process area in a reference metal-layer flow,
// divided by the number of steps in that area.
//
// Lithography is split by patterning method because an EUV exposure draws an
// order of magnitude more energy than a 193i DUV exposure (the EUV source,
// vacuum train and resist bake dominate).
type EnergyTable struct {
	// PerStep is the energy of one step in each non-lithography area.
	PerStep map[Area]units.Energy
	// EUVExposure is the energy of one EUV lithography exposure.
	EUVExposure units.Energy
	// DUVExposure is the energy of one 193i DUV lithography exposure.
	DUVExposure units.Energy
}

// Validate checks the table covers every non-lithography area with a
// non-negative energy.
func (t EnergyTable) Validate() error {
	if t.PerStep == nil {
		return errors.New("process: energy table has no per-step energies")
	}
	for _, a := range Areas() {
		if a == Lithography {
			continue
		}
		e, ok := t.PerStep[a]
		if !ok {
			return errors.New("process: energy table missing area " + a.String())
		}
		if e < 0 {
			return errors.New("process: negative step energy for area " + a.String())
		}
	}
	if t.EUVExposure < 0 || t.DUVExposure < 0 {
		return errors.New("process: negative lithography exposure energy")
	}
	return nil
}

// StepEnergy reports the energy of one step under the table.
func (t EnergyTable) StepEnergy(s Step) units.Energy {
	if s.Area == Lithography {
		switch s.Litho {
		case LithoEUV:
			return t.EUVExposure
		case LithoDUV:
			return t.DUVExposure
		}
		return 0
	}
	return t.PerStep[s.Area]
}

// Reference anchors from the paper (Sec. II-C and Fig. 2):
const (
	// FEOLEnergyKWh is the front-end + middle-of-line fabrication energy of
	// the imec iN7 EUV node, applied to the Si FinFET layers of both
	// processes (kWh per 300 mm wafer).
	FEOLEnergyKWh = 436

	// IN7ReferenceEPAKWh is the total per-wafer fabrication energy of the
	// imec iN7 EUV reference node used to scale GPA (Eq. 3). It is derived
	// from the paper's reported per-wafer carbon totals (837/1100 kgCO2e on
	// the US grid) together with the stated EPA ratios (0.79× all-Si,
	// 1.22× M3D), which invert to EPA(all-Si) ≈ 705 and EPA(M3D) ≈
	// 1088 kWh/wafer.
	IN7ReferenceEPAKWh = 892

	// IN7GPAGramsPerCm2 is the gas-emission carbon of the iN7 reference on
	// a 300 mm wafer (0.20 kgCO2e/cm², paper Sec. II-B).
	IN7GPAGramsPerCm2 = 200
)

// DefaultEnergyTable returns the calibrated per-step energy table.
//
// Calibration: the deposition entry (1.33 kWh/step = 4 kWh over 3 steps for
// an EUV metal layer) is given verbatim in the paper (Sec. II-C, Fig. 2d).
// The remaining entries are chosen so that the complete all-Si and M3D
// flows built in this package reproduce the paper's anchors:
//
//	EPA(all-Si)/EPA(iN7) ≈ 0.79   and   EPA(M3D)/EPA(iN7) ≈ 1.22,
//
// which in turn yield per-wafer embodied carbon of ≈837 and ≈1100 kgCO2e on
// the US grid (Fig. 2c). With this table the flows land within 0.5% of both
// ratios; the calibration test in flows_test.go enforces the tolerance.
func DefaultEnergyTable() EnergyTable {
	return EnergyTable{
		PerStep: map[Area]units.Energy{
			DryEtch:       units.KilowattHours(1.5),
			Metallization: units.KilowattHours(2.0),
			Metrology:     units.KilowattHours(0.5),
			WetEtch:       units.KilowattHours(1.0),
			Deposition:    units.KilowattHours(4.0 / 3.0),
		},
		EUVExposure: units.KilowattHours(11.9),
		DUVExposure: units.KilowattHours(1.2),
	}
}
