package process

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ppatc/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestStepValidate(t *testing.T) {
	good := Step{Name: "ok", Area: DryEtch}
	if err := good.Validate(); err != nil {
		t.Errorf("valid step rejected: %v", err)
	}
	bad := []Step{
		{Name: "litho without method", Area: Lithography},
		{Name: "etch with method", Area: DryEtch, Litho: LithoEUV},
		{Name: "bad area", Area: Area(99)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("step %q should be invalid", s.Name)
		}
	}
}

func TestSegmentValidate(t *testing.T) {
	if err := (Segment{Name: "empty"}).Validate(); err == nil {
		t.Error("empty segment should be invalid")
	}
	both := Segment{Name: "both", Steps: []Step{{Name: "s", Area: DryEtch}}, FixedEnergy: 1}
	if err := both.Validate(); err == nil {
		t.Error("segment with steps and fixed energy should be invalid")
	}
	if err := (Segment{Name: "neg", FixedEnergy: -1}).Validate(); err == nil {
		t.Error("negative fixed energy should be invalid")
	}
}

func TestEnergyTableValidate(t *testing.T) {
	tbl := DefaultEnergyTable()
	if err := tbl.Validate(); err != nil {
		t.Fatalf("default table invalid: %v", err)
	}
	missing := EnergyTable{PerStep: map[Area]units.Energy{DryEtch: 1}}
	if err := missing.Validate(); err == nil {
		t.Error("incomplete table should be invalid")
	}
	if err := (EnergyTable{}).Validate(); err == nil {
		t.Error("nil per-step map should be invalid")
	}
}

func TestDepositionStepEnergyMatchesPaper(t *testing.T) {
	// The paper gives 4 kWh over 3 deposition steps = 1.33 kWh/step for an
	// EUV metal layer (Sec. II-C).
	tbl := DefaultEnergyTable()
	got := tbl.StepEnergy(Step{Area: Deposition}).KilowattHours()
	if !almostEqual(got, 4.0/3.0, 1e-9) {
		t.Errorf("deposition step = %v kWh, want 1.33", got)
	}
}

func TestEUVMetalViaPairRecipe(t *testing.T) {
	seg, err := MetalViaPair("M1", 36)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 2d structure: the EUV metal layer must have exactly 3 deposition
	// steps totalling 4 kWh, and 2 EUV exposures.
	var depo, euv int
	for _, s := range seg.Steps {
		if s.Area == Deposition {
			depo++
		}
		if s.Litho == LithoEUV {
			euv++
		}
	}
	if depo != 3 {
		t.Errorf("EUV pair has %d deposition steps, want 3 (Fig. 2d)", depo)
	}
	if euv != 2 {
		t.Errorf("EUV pair has %d EUV exposures, want 2 (via + trench)", euv)
	}
}

func TestPatterningForPitch(t *testing.T) {
	cases := map[int]MetalPatterning{36: PatternEUV, 42: PatternSADP, 48: PatternSADP, 64: PatternLELE, 80: PatternSingleDUV}
	for pitch, want := range cases {
		got, err := PatterningForPitch(pitch)
		if err != nil || got != want {
			t.Errorf("PatterningForPitch(%d) = %v, %v; want %v", pitch, got, err, want)
		}
	}
	if _, err := PatterningForPitch(28); err == nil {
		t.Error("unknown pitch should fail")
	}
}

func TestMetalPairEnergyOrdering(t *testing.T) {
	// Tighter pitch must cost more energy: EUV(36) > SADP(48) > LELE(64) > DUV(80).
	tbl := DefaultEnergyTable()
	energy := func(pitch int) float64 {
		seg, err := MetalViaPair("M", pitch)
		if err != nil {
			t.Fatal(err)
		}
		var e units.Energy
		for _, s := range seg.Steps {
			e += tbl.StepEnergy(s)
		}
		return e.KilowattHours()
	}
	e36, e48, e64, e80 := energy(36), energy(48), energy(64), energy(80)
	if !(e36 > e48 && e48 > e64 && e64 > e80) {
		t.Errorf("pair energies not ordered: 36=%v 48=%v 64=%v 80=%v", e36, e48, e64, e80)
	}
}

func TestFlowValidation(t *testing.T) {
	if err := (&Flow{}).Validate(); err == nil {
		t.Error("unnamed empty flow should be invalid")
	}
	if err := (&Flow{Name: "x"}).Validate(); err == nil {
		t.Error("flow without segments should be invalid")
	}
	if err := AllSi7nm().Validate(); err != nil {
		t.Errorf("all-Si flow invalid: %v", err)
	}
	if err := M3D7nm().Validate(); err != nil {
		t.Errorf("M3D flow invalid: %v", err)
	}
}

func TestAllSiFlowStructure(t *testing.T) {
	f := AllSi7nm()
	// FEOL + 9 metal layers.
	if got := len(f.Segments); got != 10 {
		t.Fatalf("all-Si flow has %d segments, want 10", got)
	}
	if f.FixedEnergy().KilowattHours() != FEOLEnergyKWh {
		t.Errorf("FEOL energy = %v, want %v", f.FixedEnergy().KilowattHours(), FEOLEnergyKWh)
	}
}

func TestM3DFlowStructure(t *testing.T) {
	f := M3D7nm()
	// FEOL + M1-M4 + tier1 + M5,M6 + tier2 + M7,M8 + IGZO + M9,M10 + M11-M15.
	if got := len(f.Segments); got != 19 {
		t.Fatalf("M3D flow has %d segments, want 19", got)
	}
	var cn, igzo int
	for _, seg := range f.Segments {
		if strings.HasPrefix(seg.Name, "CNFET tier") {
			cn++
		}
		if strings.HasPrefix(seg.Name, "IGZO tier") {
			igzo++
		}
	}
	if cn != 2 || igzo != 1 {
		t.Errorf("M3D flow has %d CNFET tiers and %d IGZO tiers, want 2 and 1", cn, igzo)
	}
}

// TestEPACalibration is the headline calibration check: the flows'
// fabrication energies must reproduce the paper's EPA ratios
// (Sec. II, contribution 2): 0.79× for all-Si and 1.22× for M3D relative
// to the iN7 reference, within 1%.
func TestEPACalibration(t *testing.T) {
	tbl := DefaultEnergyTable()
	ref := IN7Reference().KilowattHours()

	allSi, err := AllSi7nm().EPA(tbl)
	if err != nil {
		t.Fatal(err)
	}
	m3d, err := M3D7nm().EPA(tbl)
	if err != nil {
		t.Fatal(err)
	}
	rAll := allSi.KilowattHours() / ref
	rM3D := m3d.KilowattHours() / ref
	if !almostEqual(rAll, 0.79, 0.01) {
		t.Errorf("EPA(all-Si)/EPA(iN7) = %.4f, want 0.79 ± 1%%", rAll)
	}
	if !almostEqual(rM3D, 1.22, 0.01) {
		t.Errorf("EPA(M3D)/EPA(iN7) = %.4f, want 1.22 ± 1%%", rM3D)
	}
	t.Logf("EPA all-Si = %.1f kWh (ratio %.4f), M3D = %.1f kWh (ratio %.4f)",
		allSi.KilowattHours(), rAll, m3d.KilowattHours(), rM3D)
}

func TestEq4MatrixAgreesWithStepwiseEPA(t *testing.T) {
	tbl := DefaultEnergyTable()
	flows := []*Flow{AllSi7nm(), M3D7nm()}
	rows, fixed, err := Eq4Matrix(tbl, flows...)
	if err != nil {
		t.Fatal(err)
	}
	epas := Eq4EPA(rows, fixed)
	for i, f := range flows {
		direct, err := f.EPA(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(epas[i].KilowattHours(), direct.KilowattHours(), 1e-9) {
			t.Errorf("%s: matrix EPA %v != stepwise EPA %v", f.Name, epas[i], direct)
		}
	}
	out := FormatEq4(rows, fixed, flows)
	for _, want := range []string{"lithography (EUV)", "deposition", "EPA total"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted Eq4 output missing %q", want)
		}
	}
}

func TestStepCounts(t *testing.T) {
	f := AllSi7nm()
	c := f.Count()
	// 3 EUV layers × 2 exposures = 6 EUV; 2 SADP × 3 + 2 LELE × 3 + 2 DUV × 2 = 16 DUV.
	if c.EUVExposures != 6 {
		t.Errorf("all-Si EUV exposures = %d, want 6", c.EUVExposures)
	}
	if c.DUVExposures != 16 {
		t.Errorf("all-Si DUV exposures = %d, want 16", c.DUVExposures)
	}
	if c.ByArea[Lithography] != c.EUVExposures+c.DUVExposures {
		t.Error("lithography area count must equal EUV+DUV exposures")
	}
	if c.Total() <= 0 {
		t.Error("total steps must be positive")
	}
}

func TestSegmentEnergyBreakdown(t *testing.T) {
	tbl := DefaultEnergyTable()
	f := M3D7nm()
	segs, err := f.SegmentEnergy(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Energy
	for _, s := range segs {
		sum += s.Energy
	}
	direct, _ := f.EPA(tbl)
	if !almostEqual(sum.KilowattHours(), direct.KilowattHours(), 1e-9) {
		t.Errorf("segment sum %v != flow EPA %v", sum, direct)
	}
	// Device tiers must be among the most expensive BEOL segments (they
	// carry 2 EUV exposures plus device formation).
	var tierE, m80E float64
	for _, s := range segs {
		if s.Name == "CNFET tier 1" {
			tierE = s.Energy.KilowattHours()
		}
		if strings.HasPrefix(s.Name, "M15") {
			m80E = s.Energy.KilowattHours()
		}
	}
	if tierE <= m80E {
		t.Errorf("CNFET tier energy %v should exceed 80 nm metal energy %v", tierE, m80E)
	}
}

func TestAreaEnergyView(t *testing.T) {
	tbl := DefaultEnergyTable()
	m, err := AllSi7nm().AreaEnergy(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Energy
	for _, e := range m {
		sum += e
	}
	direct, _ := AllSi7nm().EPA(tbl)
	if !almostEqual(sum.KilowattHours(), direct.KilowattHours(), 1e-9) {
		t.Errorf("area sum %v != flow EPA %v", sum, direct)
	}
	names := SortedAreaNames(m)
	if len(names) != len(m) {
		t.Errorf("sorted names %d entries, map has %d", len(names), len(m))
	}
	if names[0] != "dry etch" {
		t.Errorf("first area = %q, want dry etch", names[0])
	}
}

func TestCNTMaterialNegligible(t *testing.T) {
	wafer := units.SquareCentimeters(math.Pi * 225)
	mat, err := CNTMaterial(PaperCNTFilm(wafer))
	if err != nil {
		t.Fatal(err)
	}
	c, err := mat.Carbon()
	if err != nil {
		t.Fatal(err)
	}
	// The CNT MPA contribution must be negligible vs. the 3.5e5 g wafer
	// baseline (< 0.1%).
	if c.Grams() >= 350 {
		t.Errorf("CNT carbon = %v g, expected ≪ wafer MPA", c.Grams())
	}
	if c.Grams() <= 0 {
		t.Error("CNT carbon should be positive")
	}
}

func TestIGZOMaterialNegligible(t *testing.T) {
	wafer := units.SquareCentimeters(math.Pi * 225)
	mat, err := IGZOMaterial(PaperIGZOFilm(wafer))
	if err != nil {
		t.Fatal(err)
	}
	c, err := mat.Carbon()
	if err != nil {
		t.Fatal(err)
	}
	if c.Grams() >= 350 || c.Grams() <= 0 {
		t.Errorf("IGZO carbon = %v g, expected small positive", c.Grams())
	}
}

func TestMPAWithFilms(t *testing.T) {
	wafer := units.SquareCentimeters(math.Pi * 225)
	cnt, _ := CNTMaterial(PaperCNTFilm(wafer))
	igzo, _ := IGZOMaterial(PaperIGZOFilm(wafer))
	mpa, err := MPAWithFilms(wafer, cnt, igzo)
	if err != nil {
		t.Fatal(err)
	}
	base := SiWaferMPA().GramsPerSquareCentimeter()
	got := mpa.GramsPerSquareCentimeter()
	if got < base || got > base*1.001 {
		t.Errorf("MPA with films = %v g/cm², want slightly above %v", got, base)
	}
	if _, err := MPAWithFilms(0); err == nil {
		t.Error("zero wafer area should fail")
	}
}

func TestFilmSpecValidation(t *testing.T) {
	wafer := units.SquareCentimeters(100)
	badCNT := []CNTFilmSpec{
		{WaferArea: 0, CNTsPerMicron: 200, DiameterNM: 1.5},
		{WaferArea: wafer, CNTsPerMicron: 0, DiameterNM: 1.5},
		{WaferArea: wafer, CNTsPerMicron: 200, DiameterNM: 1.5, ActiveFraction: 2},
		{WaferArea: wafer, CNTsPerMicron: 200, DiameterNM: 1.5, Tiers: -1},
	}
	for i, s := range badCNT {
		if _, err := s.Mass(); err == nil {
			t.Errorf("CNT spec %d should be invalid", i)
		}
	}
	badIGZO := []IGZOFilmSpec{
		{WaferArea: 0, ThicknessNM: 10},
		{WaferArea: wafer, ThicknessNM: 0},
		{WaferArea: wafer, ThicknessNM: 10, ActiveFraction: -0.1},
	}
	for i, s := range badIGZO {
		if _, err := s.Mass(); err == nil {
			t.Errorf("IGZO spec %d should be invalid", i)
		}
	}
	if _, err := (FilmMaterial{MassPerWafer: -1}).Carbon(); err == nil {
		t.Error("negative film mass should fail")
	}
}

// Property: EPA is monotone — appending any valid segment never decreases it.
func TestEPAMonotoneUnderExtension(t *testing.T) {
	tbl := DefaultEnergyTable()
	base := AllSi7nm()
	baseEPA, err := base.EPA(tbl)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pitchIdx uint8) bool {
		pitches := []int{36, 48, 64, 80}
		seg, err := MetalViaPair("extra", pitches[int(pitchIdx)%len(pitches)])
		if err != nil {
			return false
		}
		ext := &Flow{Name: "ext", Segments: append(append([]Segment{}, base.Segments...), seg)}
		e, err := ext.EPA(tbl)
		if err != nil {
			return false
		}
		return e >= baseEPA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flow EPA equals the sum of its segment energies for arbitrary
// flows assembled from library segments.
func TestEPAAdditivity(t *testing.T) {
	tbl := DefaultEnergyTable()
	f := func(seed uint32) bool {
		n := int(seed%5) + 1
		flow := &Flow{Name: "rand"}
		for i := 0; i < n; i++ {
			switch (seed >> (2 * i)) % 3 {
			case 0:
				seg, _ := MetalViaPair("m", 36)
				flow.Segments = append(flow.Segments, seg)
			case 1:
				flow.Segments = append(flow.Segments, CNFETTier("cn"))
			default:
				flow.Segments = append(flow.Segments, IGZOTier("ig"))
			}
		}
		total, err := flow.EPA(tbl)
		if err != nil {
			return false
		}
		segs, err := flow.SegmentEnergy(tbl)
		if err != nil {
			return false
		}
		var sum units.Energy
		for _, s := range segs {
			sum += s.Energy
		}
		return almostEqual(total.KilowattHours(), sum.KilowattHours(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildM3DPaperConfigMatchesHandBuilt(t *testing.T) {
	// The parametric generator with the paper's configuration must give
	// the same EPA as the hand-built M3D7nm flow.
	generated, err := BuildM3D(PaperM3DConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := DefaultEnergyTable()
	got, err := generated.EPA(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := M3D7nm().EPA(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.KilowattHours(), want.KilowattHours(), 1e-9) {
		t.Errorf("generated EPA %v != hand-built %v", got, want)
	}
}

func TestBuildM3DTierScaling(t *testing.T) {
	// EPA grows monotonically with tier count.
	tbl := DefaultEnergyTable()
	var prev float64
	for tiers := 1; tiers <= 4; tiers++ {
		cfg := PaperM3DConfig()
		cfg.CNFETTiers = tiers
		f, err := BuildM3D(cfg)
		if err != nil {
			t.Fatal(err)
		}
		epa, err := f.EPA(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if epa.KilowattHours() <= prev {
			t.Errorf("%d tiers: EPA %v did not grow", tiers, epa)
		}
		prev = epa.KilowattHours()
	}
}

func TestBuildM3DValidation(t *testing.T) {
	bad := []M3DConfig{
		{},
		{CNFETTiers: -1, IGZOTiers: 1, InterTierMetals: 2, BaseMetals: 4},
		{CNFETTiers: 1, InterTierMetals: 0, BaseMetals: 4},
		{CNFETTiers: 1, InterTierMetals: 2, BaseMetals: 0},
		{CNFETTiers: 1, InterTierMetals: 2, BaseMetals: 4, TopMetals: []int{17}},
	}
	for i, c := range bad {
		if _, err := BuildM3D(c); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestWaterAccounting(t *testing.T) {
	wt := DefaultWaterTable()
	if err := wt.Validate(); err != nil {
		t.Fatal(err)
	}
	allSi, err := AllSi7nm().Water(wt)
	if err != nil {
		t.Fatal(err)
	}
	m3d, err := M3D7nm().Water(wt)
	if err != nil {
		t.Fatal(err)
	}
	// Full-flow ultrapure water lands in the thousands of liters per
	// wafer, and the M3D process uses more (more steps).
	if allSi < 1000 || allSi > 20000 {
		t.Errorf("all-Si water = %.0f L/wafer, want thousands", allSi)
	}
	if m3d <= allSi {
		t.Errorf("M3D water %.0f should exceed all-Si %.0f", m3d, allSi)
	}
	// The extra wet processing of the IGZO tier (wet active etch) shows:
	// the M3D premium exceeds the pure step-count ratio of dry steps.
	t.Logf("water: all-Si %.0f L, M3D %.0f L (ratio %.3f)", allSi, m3d, m3d/allSi)
}

func TestWaterTableValidation(t *testing.T) {
	bad := WaterTable{}
	if err := bad.Validate(); err == nil {
		t.Error("empty table should fail")
	}
	wt := DefaultWaterTable()
	wt.PerStep[WetEtch] = -1
	if err := wt.Validate(); err == nil {
		t.Error("negative entry should fail")
	}
	wt = DefaultWaterTable()
	wt.PerLithoExposure = -1
	if err := wt.Validate(); err == nil {
		t.Error("negative litho water should fail")
	}
	delete(wt.PerStep, DryEtch)
	if err := wt.Validate(); err == nil {
		t.Error("missing area should fail")
	}
}

func TestGasInventoryGWP(t *testing.T) {
	// SF6 dominates per gram; NH3 is nearly inert in CO2e terms.
	sf6, err := GWP100(GasSF6)
	if err != nil {
		t.Fatal(err)
	}
	nh3, err := GWP100(GasNH3)
	if err != nil {
		t.Fatal(err)
	}
	if sf6 < 1000*nh3 {
		t.Errorf("SF6 GWP %v should dwarf NH3 %v", sf6, nh3)
	}
	if _, err := GWP100(Gas("Xe")); err == nil {
		t.Error("unknown gas should fail")
	}
	if got := len(Gases()); got < 8 {
		t.Errorf("gas table has %d entries", got)
	}
}

func TestReferenceInventoryMatchesIN7GPA(t *testing.T) {
	// The bundled reference inventory must reproduce the paper's
	// 0.20 kgCO2e/cm² iN7 GPA within 5%.
	inv := ReferenceIN7Inventory()
	wafer := units.SquareCentimeters(706.858)
	gpa, err := inv.GPA(wafer)
	if err != nil {
		t.Fatal(err)
	}
	got := gpa.GramsPerSquareCentimeter()
	if !almostEqual(got, 200, 0.05) {
		t.Errorf("reference inventory GPA = %.1f g/cm², want 200 ± 5%%", got)
	}
	out, err := FormatInventory(inv)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NF3", "total", "GWP-100"} {
		if !strings.Contains(out, want) {
			t.Errorf("inventory table missing %q", want)
		}
	}
}

func TestGasInventoryValidation(t *testing.T) {
	if _, err := (GasInventory{}).Carbon(); err == nil {
		t.Error("empty inventory should fail")
	}
	if _, err := (GasInventory{GasCH4: -1}).Carbon(); err == nil {
		t.Error("negative mass should fail")
	}
	if _, err := (GasInventory{Gas("Xe"): 1}).Carbon(); err == nil {
		t.Error("unknown gas should fail")
	}
	if _, err := (GasInventory{GasCH4: 1}).GPA(0); err == nil {
		t.Error("zero wafer area should fail")
	}
}
