package process

import (
	"fmt"
	"strings"

	"ppatc/internal/units"
)

// Eq4Row is one row of the paper's Eq. 4 matrix product: a step category
// with its per-step energy and its usage count in each flow.
type Eq4Row struct {
	// Category names the step bucket ("dry etch", "lithography (EUV)", ...).
	Category string
	// PerStep is the fabrication energy of one step in the bucket.
	PerStep units.Energy
	// Counts holds the per-flow step counts, indexed like the flows passed
	// to Eq4Matrix.
	Counts []int
}

// Eq4Matrix assembles the Eq. 4 view for a set of flows under a table: the
// per-category step counts (the N matrix) alongside per-step energies, plus
// the per-flow fixed FEOL energies. Multiplying and summing reproduces each
// flow's EPA; the EPA method performs the same computation step-wise.
func Eq4Matrix(tbl EnergyTable, flows ...*Flow) ([]Eq4Row, []units.Energy, error) {
	if err := tbl.Validate(); err != nil {
		return nil, nil, err
	}
	counts := make([]StepCounts, len(flows))
	fixed := make([]units.Energy, len(flows))
	for i, f := range flows {
		if err := f.Validate(); err != nil {
			return nil, nil, err
		}
		counts[i] = f.Count()
		fixed[i] = f.FixedEnergy()
	}
	var rows []Eq4Row
	addRow := func(cat string, perStep units.Energy, get func(StepCounts) int) {
		r := Eq4Row{Category: cat, PerStep: perStep, Counts: make([]int, len(flows))}
		for i := range flows {
			r.Counts[i] = get(counts[i])
		}
		rows = append(rows, r)
	}
	for _, a := range Areas() {
		a := a
		if a == Lithography {
			addRow("lithography (EUV)", tbl.EUVExposure, func(c StepCounts) int { return c.EUVExposures })
			addRow("lithography (DUV)", tbl.DUVExposure, func(c StepCounts) int { return c.DUVExposures })
			continue
		}
		addRow(a.String(), tbl.PerStep[a], func(c StepCounts) int { return c.ByArea[a] })
	}
	return rows, fixed, nil
}

// Eq4EPA evaluates the matrix product: per-flow EPA = Σ rows (count ×
// per-step) + fixed energy. It must agree with Flow.EPA and exists so tests
// and the CLI can cross-check the two formulations.
func Eq4EPA(rows []Eq4Row, fixed []units.Energy) []units.Energy {
	out := make([]units.Energy, len(fixed))
	copy(out, fixed)
	for _, r := range rows {
		for i, n := range r.Counts {
			out[i] += units.Energy(float64(n) * float64(r.PerStep))
		}
	}
	return out
}

// FormatEq4 renders the matrix as an aligned text table with one column per
// flow, for the CLI's fig2d-style output.
func FormatEq4(rows []Eq4Row, fixed []units.Energy, flows []*Flow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s", "step category", "kWh/step")
	for _, f := range flows {
		fmt.Fprintf(&b, " %22s", f.Name)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %14.2f", r.Category, r.PerStep.KilowattHours())
		for _, n := range r.Counts {
			fmt.Fprintf(&b, " %22d", n)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-22s %14s", "fixed FEOL/MOL (kWh)", "")
	for _, e := range fixed {
		fmt.Fprintf(&b, " %22.0f", e.KilowattHours())
	}
	b.WriteByte('\n')
	epas := Eq4EPA(rows, fixed)
	fmt.Fprintf(&b, "%-22s %14s", "EPA total (kWh/wafer)", "")
	for _, e := range epas {
		fmt.Fprintf(&b, " %22.1f", e.KilowattHours())
	}
	b.WriteByte('\n')
	return b.String()
}
