package process

import (
	"fmt"

	"ppatc/internal/units"
)

// ASAP7 metal-stack pitches (nm) followed by both processes (Sec. II-C):
// M1-M3 at 36 nm, M4-M5 at 48 nm, M6-M7 at 64 nm, M8-M9 at 80 nm.
var asap7Pitch = map[int]int{
	1: 36, 2: 36, 3: 36,
	4: 48, 5: 48,
	6: 64, 7: 64,
	8: 80, 9: 80,
}

// feolSegment is the Si FinFET front-end + middle-of-line of both processes,
// equated to the imec iN7 EUV FEOL/MOL energy (436 kWh/wafer, Sec. II-C).
func feolSegment() Segment {
	return Segment{
		Name:        "FEOL+MOL (Si FinFET, iN7 reference)",
		FixedEnergy: units.KilowattHours(FEOLEnergyKWh),
	}
}

// AllSi7nm builds the baseline all-Si 7 nm process (Fig. 2a): the iN7-class
// FEOL plus a 9-layer ASAP7 BEOL (M1-M9).
func AllSi7nm() *Flow {
	f := &Flow{Name: "all-Si 7nm"}
	f.Segments = append(f.Segments, feolSegment())
	for m := 1; m <= 9; m++ {
		seg, err := MetalViaPair(fmt.Sprintf("M%d", m), asap7Pitch[m])
		if err != nil {
			// The pitch table is package data; a miss is a programming error.
			panic(err)
		}
		f.Segments = append(f.Segments, seg)
	}
	return f
}

// M3D7nm builds the monolithic-3D IGZO/CNFET/Si process (Fig. 2b):
//
//	FEOL (Si CMOS)                      — identical to the all-Si process
//	M1-M4                               — identical to the all-Si process
//	CNFET tier 1                        — BEOL CNFETs incl. vias upward
//	M5, M6 (36 nm)                      — inter-tier routing
//	CNFET tier 2
//	M7, M8 (36 nm)
//	IGZO tier                           — BEOL IGZO FETs
//	M9, M10 (36 nm)                     — the two 36 nm layers above IGZO
//	M11-M15                             — top metals at the same dimensions
//	                                      as M5-M9 of the all-Si process
//	                                      (48 / 64 / 64 / 80 / 80 nm)
//
// The extra standalone vias the paper names between tiers (V5, V6, ...) are
// folded into the metal/via pair recipes and the tiers' own via steps.
func M3D7nm() *Flow {
	f := &Flow{Name: "M3D IGZO/CNFET/Si 7nm"}
	f.Segments = append(f.Segments, feolSegment())

	mv := func(name string, pitch int) {
		seg, err := MetalViaPair(name, pitch)
		if err != nil {
			panic(err)
		}
		f.Segments = append(f.Segments, seg)
	}

	for m := 1; m <= 4; m++ {
		mv(fmt.Sprintf("M%d", m), asap7Pitch[m])
	}
	f.Segments = append(f.Segments, CNFETTier("CNFET tier 1"))
	mv("M5", 36)
	mv("M6", 36)
	f.Segments = append(f.Segments, CNFETTier("CNFET tier 2"))
	mv("M7", 36)
	mv("M8", 36)
	f.Segments = append(f.Segments, IGZOTier("IGZO tier"))
	mv("M9", 36)
	mv("M10", 36)
	// Top metals mirror M5-M9 of the all-Si stack.
	top := []int{48, 64, 64, 80, 80}
	for i, p := range top {
		mv(fmt.Sprintf("M%d", 11+i), p)
	}
	return f
}

// IN7Reference reports the paper's reference EPA for GPA scaling (Eq. 3).
func IN7Reference() units.Energy {
	return units.KilowattHours(IN7ReferenceEPAKWh)
}

// IN7GPA reports the gas-emission carbon density of the iN7 reference.
func IN7GPA() units.CarbonPerArea {
	return units.GramsPerSquareCentimeter(IN7GPAGramsPerCm2)
}
