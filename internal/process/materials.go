package process

import (
	"errors"
	"math"

	"ppatc/internal/units"
)

// Materials accounting (the MPA term of Eq. 2). The baseline 500 gCO2e/cm²
// covers the silicon wafer itself as reported in semiconductor LCAs (Boyd).
// Beyond-Si films add their own procurement carbon, computed as deposited
// mass × a synthesis emission factor.

// SiWaferMPA is the materials-procurement carbon per area of a silicon
// wafer (paper Sec. II-B: 500 gCO2e/cm², ≈3.5e5 gCO2e per 300 mm wafer).
func SiWaferMPA() units.CarbonPerArea {
	return units.GramsPerSquareCentimeter(500)
}

// CNTEmissionFactor is the cradle-to-gate carbon of carbon-nanotube
// synthesis, averaged across on-substrate and fluidized-bed CVD methods
// (paper Sec. II-B, citing Teah et al.): ≈14 kgCO2e per gram of CNT.
const CNTEmissionFactorGramsPerGram = 14e3

// IGZOEmissionFactorGramsPerGram is the assumed cradle-to-gate carbon of
// sputtered IGZO per gram of deposited film. The paper notes that "similar
// carbon accounting and LCA methods are needed for IGZO" without giving a
// number; we adopt 100 gCO2e/g (indium-bearing sputter targets are
// energy-intensive, but the films are nanometers thick so the contribution
// is negligible either way). Override via FilmMaterial.EmissionFactor.
const IGZOEmissionFactorGramsPerGram = 100

// FilmMaterial describes a thin film whose procurement carbon is accounted
// by deposited mass.
type FilmMaterial struct {
	// Name identifies the film ("CNT", "IGZO").
	Name string
	// MassPerWafer is the deposited mass remaining on one wafer, in grams.
	MassPerWafer float64
	// EmissionFactor is the cradle-to-gate carbon per gram of film, in
	// gCO2e per gram.
	EmissionFactor float64
}

// Carbon reports the per-wafer procurement carbon of the film.
func (m FilmMaterial) Carbon() (units.Carbon, error) {
	if m.MassPerWafer < 0 || m.EmissionFactor < 0 {
		return 0, errors.New("process: film mass and emission factor must be non-negative")
	}
	return units.GramsCO2e(m.MassPerWafer * m.EmissionFactor), nil
}

// CNTFilmSpec parameterizes the estimate of CNT mass on a finished wafer.
type CNTFilmSpec struct {
	// WaferArea is the wafer area the film was deposited on.
	WaferArea units.Area
	// CNTsPerMicron is the areal CNT density of the aligned film, in tubes
	// per micron of width (200/µm is the target density for energy-
	// efficient CNFET circuits).
	CNTsPerMicron float64
	// DiameterNM is the mean CNT diameter in nanometers (1-2 nm target).
	DiameterNM float64
	// ActiveFraction is the fraction of the wafer where CNTs remain after
	// the active-region etch removes the rest.
	ActiveFraction float64
	// Tiers is the number of CNFET tiers in the stack.
	Tiers int
}

// PaperCNTFilm reflects the paper's design: two CNFET tiers at target
// density with roughly 5% of the die area remaining active.
func PaperCNTFilm(wafer units.Area) CNTFilmSpec {
	return CNTFilmSpec{
		WaferArea:      wafer,
		CNTsPerMicron:  200,
		DiameterNM:     1.5,
		ActiveFraction: 0.05,
		Tiers:          2,
	}
}

// Mass estimates the CNT mass remaining on the wafer in grams, from the
// linear mass density of a single-wall CNT:
//
//	λ ≈ (π · d · σ_graphene)   with σ_graphene = 7.61e-7 g/m² per layer,
//
// giving ≈3.6e-15 g/cm for a 1.5 nm tube. Note: the paper states the total
// CNT mass per wafer is "on the order of picograms"; a geometric estimate
// at target film density gives substantially more (milligram scale before
// the active etch). Either way the MPA contribution is far below a gram of
// CO2e per wafer, so the discrepancy does not affect any result; we keep
// the physics-based estimate and record the paper's claim here.
func (s CNTFilmSpec) Mass() (float64, error) {
	switch {
	case s.WaferArea <= 0:
		return 0, errors.New("process: wafer area must be positive")
	case s.CNTsPerMicron <= 0 || s.DiameterNM <= 0:
		return 0, errors.New("process: CNT density and diameter must be positive")
	case s.ActiveFraction < 0 || s.ActiveFraction > 1:
		return 0, errors.New("process: active fraction must be in [0, 1]")
	case s.Tiers < 0:
		return 0, errors.New("process: tier count must be non-negative")
	}
	const grapheneSheetDensity = 7.61e-7                                  // g/m² single layer
	linearDensity := math.Pi * s.DiameterNM * 1e-9 * grapheneSheetDensity // g/m of tube
	// Total tube length on the wafer: density (tubes per meter of width)
	// times wafer area.
	tubesPerMeter := s.CNTsPerMicron * 1e6
	totalLength := tubesPerMeter * s.WaferArea.SquareMeters() // meters of tube
	mass := linearDensity * totalLength * s.ActiveFraction * float64(s.Tiers)
	return mass, nil
}

// CNTMaterial builds the FilmMaterial for the spec using the paper's
// emission factor.
func CNTMaterial(s CNTFilmSpec) (FilmMaterial, error) {
	mass, err := s.Mass()
	if err != nil {
		return FilmMaterial{}, err
	}
	return FilmMaterial{Name: "CNT", MassPerWafer: mass, EmissionFactor: CNTEmissionFactorGramsPerGram}, nil
}

// IGZOFilmSpec parameterizes the estimate of IGZO mass on a finished wafer.
type IGZOFilmSpec struct {
	// WaferArea is the wafer area the film was deposited on.
	WaferArea units.Area
	// ThicknessNM is the IGZO film thickness (10 nm in the paper's flow).
	ThicknessNM float64
	// ActiveFraction is the fraction of the wafer where IGZO remains after
	// the active wet etch.
	ActiveFraction float64
}

// PaperIGZOFilm reflects the paper's design: one 10 nm IGZO tier with
// roughly 5% of the area remaining active.
func PaperIGZOFilm(wafer units.Area) IGZOFilmSpec {
	return IGZOFilmSpec{WaferArea: wafer, ThicknessNM: 10, ActiveFraction: 0.05}
}

// Mass estimates the IGZO mass remaining on the wafer in grams, using the
// bulk density of amorphous IGZO (≈6.1 g/cm³).
func (s IGZOFilmSpec) Mass() (float64, error) {
	switch {
	case s.WaferArea <= 0:
		return 0, errors.New("process: wafer area must be positive")
	case s.ThicknessNM <= 0:
		return 0, errors.New("process: film thickness must be positive")
	case s.ActiveFraction < 0 || s.ActiveFraction > 1:
		return 0, errors.New("process: active fraction must be in [0, 1]")
	}
	const igzoDensity = 6.1 // g/cm³
	volumeCm3 := s.WaferArea.SquareCentimeters() * s.ThicknessNM * 1e-7
	return volumeCm3 * igzoDensity * s.ActiveFraction, nil
}

// IGZOMaterial builds the FilmMaterial for the spec using the default
// emission factor.
func IGZOMaterial(s IGZOFilmSpec) (FilmMaterial, error) {
	mass, err := s.Mass()
	if err != nil {
		return FilmMaterial{}, err
	}
	return FilmMaterial{Name: "IGZO", MassPerWafer: mass, EmissionFactor: IGZOEmissionFactorGramsPerGram}, nil
}

// MPAWithFilms combines the Si-wafer baseline MPA with extra film
// materials, returning an effective areal density over the wafer.
func MPAWithFilms(wafer units.Area, films ...FilmMaterial) (units.CarbonPerArea, error) {
	if wafer <= 0 {
		return 0, errors.New("process: wafer area must be positive")
	}
	total := SiWaferMPA().Over(wafer)
	for _, f := range films {
		c, err := f.Carbon()
		if err != nil {
			return 0, err
		}
		total += c
	}
	return units.CarbonPerArea(float64(total) / wafer.SquareMeters()), nil
}
