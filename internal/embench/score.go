package embench

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Embench-style scoring: the suite's headline number is the geometric mean
// of per-benchmark speed relative to a reference platform. Our reference
// is the bundled suite itself at its calibrated cycle counts, so a
// modified core (different cycle model, added instructions) scores against
// the shipped baseline.

// ReferenceCycles returns the bundled suite's cycle counts, measured once
// per process (the assembly is deterministic, so these are constants of
// the build). Safe for concurrent use.
func ReferenceCycles() (map[string]uint64, error) {
	refOnce.Do(measureReference)
	if refErr != nil {
		return nil, refErr
	}
	out := make(map[string]uint64, len(refCycles))
	for k, v := range refCycles {
		out[k] = v
	}
	return out, nil
}

var (
	refOnce   sync.Once
	refCycles map[string]uint64
	refErr    error
)

func measureReference() {
	refCycles = make(map[string]uint64)
	for _, w := range Workloads() {
		res, err := Run(w, 1<<34)
		if err != nil {
			refErr = err
			return
		}
		refCycles[w.Name] = res.Cycles
	}
}

// Score computes the Embench-style relative score of a set of measured
// cycle counts against the reference: geometric mean over workloads of
// reference/measured (higher is faster; 1.0 matches the reference).
// Every reference workload must be present.
func Score(measured map[string]uint64) (float64, error) {
	ref, err := ReferenceCycles()
	if err != nil {
		return 0, err
	}
	if len(measured) == 0 {
		return 0, errors.New("embench: no measurements")
	}
	var logSum float64
	n := 0
	for name, refC := range ref {
		m, ok := measured[name]
		if !ok {
			return 0, fmt.Errorf("embench: measurement missing workload %q", name)
		}
		if m == 0 {
			return 0, fmt.Errorf("embench: zero cycles for %q", name)
		}
		logSum += math.Log(float64(refC) / float64(m))
		n++
	}
	return math.Exp(logSum / float64(n)), nil
}

// FormatReference renders the reference table.
func FormatReference() (string, error) {
	ref, err := ReferenceCycles()
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(ref))
	for n := range ref {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s\n", "workload", "ref cycles")
	for _, n := range names {
		fmt.Fprintf(&sb, "%-14s %12d\n", n, ref[n])
	}
	return sb.String(), nil
}
