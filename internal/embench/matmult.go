package embench

import "fmt"

// matmultReps and matmultPad calibrate the workload's cycle count to the
// paper's Table II figure for matmul-int (20,047,348 cycles at 500 MHz):
// 180 multiplications of the 20×20 kernel plus a 70-iteration delay loop
// per repetition land within 50 cycles of the anchor. See
// TestMatmultCycleAnchor.
const (
	matmultReps = 180
	matmultPad  = 70
)

// matmultN is the square matrix dimension (Embench matmult-int uses 20).
const matmultN = 20

// MatmultInt returns the paper's headline workload: repeated 20×20 integer
// matrix multiplication with wrapping arithmetic, data initialized by the
// shared LCG, checksum accumulating every product element.
func MatmultInt() Workload {
	return matmultWithReps(matmultReps)
}

func matmultWithReps(reps int) Workload {
	src := fmt.Sprintf(`
	.equ REPS, %d
	; frame: [0]=i, [4]=j, [8]=&A, [12]=&B, [16]=&C, [20]=rep
		sub sp, #24
		li r0, 0x20000000
		str r0, [sp, #8]        ; A
		movs r1, #200
		lsls r1, r1, #3         ; 1600 = 20*20*4
		adds r2, r0, r1
		str r2, [sp, #12]       ; B = A + 1600
		adds r2, r2, r1
		str r2, [sp, #16]       ; C = B + 1600

	; ---- init A and B with the LCG ----
		ldr r0, [sp, #8]
		lsls r1, r1, #1         ; 3200 bytes = A and B
		movs r2, #1             ; seed
	init_loop:
		movs r3, #75
		muls r2, r3
		adds r2, #74
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne init_loop

		li r0, REPS
		str r0, [sp, #20]
		movs r7, #0             ; checksum
	rep_loop:
		movs r0, #0
		str r0, [sp, #0]        ; i = 0
	i_loop:
		movs r1, #0
		str r1, [sp, #4]        ; j = 0
	j_loop:
		ldr r0, [sp, #0]        ; i
		movs r2, #80
		muls r2, r0             ; i*80
		ldr r4, [sp, #8]
		adds r2, r2, r4         ; aPtr = &A[i][0]
		ldr r1, [sp, #4]        ; j
		lsls r3, r1, #2
		ldr r4, [sp, #12]
		adds r3, r3, r4         ; bPtr = &B[0][j]
		movs r5, #0             ; acc
		movs r6, #20            ; k
	k_loop:
		ldr r0, [r2]
		ldr r4, [r3]
		muls r0, r4
		adds r5, r5, r0
		adds r2, #4
		adds r3, #80
		subs r6, #1
		bne k_loop
		; C[i][j] = acc, checksum += acc
		ldr r0, [sp, #0]
		movs r4, #80
		muls r4, r0
		ldr r1, [sp, #4]
		lsls r0, r1, #2
		adds r4, r4, r0
		ldr r0, [sp, #16]
		adds r4, r4, r0
		str r5, [r4]
		adds r7, r7, r5
		; j++
		ldr r1, [sp, #4]
		adds r1, #1
		str r1, [sp, #4]
		cmp r1, #20
		bge j_done
		b j_loop
	j_done:
		; i++
		ldr r0, [sp, #0]
		adds r0, #1
		str r0, [sp, #0]
		cmp r0, #20
		bge i_done
		b i_loop
	i_done:
		; calibration pad (see matmultPad)
		movs r3, #%d
	pad_loop:
		subs r3, #1
		bne pad_loop
		; rep--
		ldr r0, [sp, #20]
		subs r0, #1
		str r0, [sp, #20]
		beq all_done
		b rep_loop
	all_done:
		movs r0, r7
		add sp, #24
		bkpt #0
	`, reps, matmultPad)
	return Workload{
		Name:        "matmult-int",
		Description: fmt.Sprintf("%d repetitions of a %d×%d wrapping integer matrix multiply", reps, matmultN, matmultN),
		Source:      src,
		Expected:    matmultGolden(reps),
	}
}

// matmultGolden is the bit-exact Go reference of the assembly above.
func matmultGolden(reps int) uint32 {
	const n = matmultN
	var mem [2 * n * n]uint32
	x := uint32(1)
	for i := range mem {
		x = lcgNext(x)
		mem[i] = x
	}
	a := mem[:n*n]
	b := mem[n*n:]
	var sum uint32
	for r := 0; r < reps; r++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc uint32
				for k := 0; k < n; k++ {
					acc += a[i*n+k] * b[k*n+j]
				}
				sum += acc
			}
		}
	}
	return sum
}
