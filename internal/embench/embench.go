// Package embench provides Embench-style embedded workloads for the
// Cortex-M0 simulator, standing in for the compiled Embench binaries of
// the paper's flow (Sec. III: "running applications from the Embench
// suite"). Each workload is hand-written ARMv6-M assembly paired with a
// bit-exact Go reference implementation; running a workload checks the
// simulator's result against the reference, so every run cross-validates
// the ISA model.
//
// The matmult-int workload is the paper's headline application: its
// repetition count is calibrated so the cycle count lands at the paper's
// 20,047,348 cycles (Table II) within a fraction of a percent.
package embench

import (
	"fmt"
	"sort"
	"sync"

	"ppatc/internal/thumb"
)

// Workload is one benchmark kernel.
type Workload struct {
	// Name is the Embench-style identifier ("matmult-int", "crc32", ...).
	Name string
	// Description summarizes the kernel.
	Description string
	// Source is the ARMv6-M assembly text.
	Source string
	// Expected is the golden result (r0 at halt), computed by the Go
	// reference implementation.
	Expected uint32
}

// Result is one simulated run.
type Result struct {
	// Workload echoes the workload name.
	Workload string
	// Cycles and Instructions are the execution counts.
	Cycles, Instructions uint64
	// Stats is the memory traffic breakdown.
	Stats thumb.AccessStats
	// Checksum is r0 at halt.
	Checksum uint32
}

// ProgramReadsPerCycle reports the program-memory access rate.
func (r Result) ProgramReadsPerCycle() float64 {
	return float64(r.Stats.ProgramReads) / float64(r.Cycles)
}

// DataReadsPerCycle reports the data-memory read rate.
func (r Result) DataReadsPerCycle() float64 {
	return float64(r.Stats.DataReads) / float64(r.Cycles)
}

// DataWritesPerCycle reports the data-memory write rate.
func (r Result) DataWritesPerCycle() float64 {
	return float64(r.Stats.DataWrites) / float64(r.Cycles)
}

// Run assembles and executes the workload, verifying the checksum against
// the Go reference implementation.
func Run(w Workload, maxCycles uint64) (Result, error) {
	prog, err := thumb.Assemble(w.Source)
	if err != nil {
		return Result{}, fmt.Errorf("embench %s: %w", w.Name, err)
	}
	mem := thumb.NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		return Result{}, fmt.Errorf("embench %s: %w", w.Name, err)
	}
	cpu := thumb.NewCPU(mem)
	if err := cpu.Run(maxCycles); err != nil {
		return Result{}, fmt.Errorf("embench %s: %w", w.Name, err)
	}
	res := Result{
		Workload:     w.Name,
		Cycles:       cpu.Cycles,
		Instructions: cpu.Instructions,
		Stats:        mem.Stats,
		Checksum:     cpu.R[0],
	}
	if res.Checksum != w.Expected {
		return res, fmt.Errorf("embench %s: checksum %#x, reference %#x",
			w.Name, res.Checksum, w.Expected)
	}
	return res, nil
}

// The workload constructors compute each kernel's Expected checksum by
// running the Go reference implementation — milliseconds of work that
// must not be repaid on every lookup (the ppatcd daemon resolves a
// workload per request). Build the suite once and serve copies.
var (
	workloadsOnce sync.Once
	workloadsAll  []Workload
	workloadsByID map[string]Workload
)

func buildWorkloads() {
	workloadsAll = []Workload{
		MatmultInt(), CRC32(), EDN(), Sieve(), StrSearch(), BlockMove(), Huff(), QSortInt(),
	}
	sort.Slice(workloadsAll, func(i, j int) bool { return workloadsAll[i].Name < workloadsAll[j].Name })
	workloadsByID = make(map[string]Workload, len(workloadsAll))
	for _, w := range workloadsAll {
		workloadsByID[w.Name] = w
	}
}

// Workloads returns the bundled suite, sorted by name. The returned slice
// is the caller's to reorder; the Workload values themselves are shared,
// immutable descriptors.
func Workloads() []Workload {
	workloadsOnce.Do(buildWorkloads)
	return append([]Workload(nil), workloadsAll...)
}

// ByName looks up a bundled workload. The lookup is a memoized map read,
// cheap enough for a per-request hot path.
func ByName(name string) (Workload, error) {
	workloadsOnce.Do(buildWorkloads)
	w, ok := workloadsByID[name]
	if !ok {
		return Workload{}, fmt.Errorf("embench: unknown workload %q", name)
	}
	return w, nil
}

// lcgNext is the shared linear congruential generator used by every
// workload's data initialization: x ← 75·x + 74 (mod 2³²), chosen because
// both constants fit Thumb-1 8-bit immediates.
func lcgNext(x uint32) uint32 { return x*75 + 74 }
