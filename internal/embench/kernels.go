package embench

import "fmt"

// crc32Reps and crc32Words size the CRC workload: bitwise (table-free)
// CRC-32 over a 1 kB buffer, the control-flow-heavy profile of Embench's
// crc32.
const (
	crc32Reps  = 40
	crc32Words = 256
)

// CRC32 returns the bitwise CRC-32 workload.
func CRC32() Workload {
	src := fmt.Sprintf(`
	.equ REPS, %d
	.equ WORDS, %d
		; init buffer with LCG
		li r0, 0x20000000
		li r1, %d               ; byte count
		movs r2, #1
	init_loop:
		movs r3, #75
		muls r2, r3
		adds r2, #74
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne init_loop

		li r2, 0xffffffff       ; crc
		li r5, 0xedb88320       ; reflected polynomial
		li r6, REPS
	rep_loop:
		li r0, 0x20000000
		li r1, WORDS
	word_loop:
		ldr r3, [r0]
		eors r2, r3
		movs r4, #32
	bit_loop:
		lsrs r2, r2, #1
		bcc no_xor
		eors r2, r5
	no_xor:
		subs r4, #1
		bne bit_loop
		adds r0, #4
		subs r1, #1
		bne word_loop
		subs r6, #1
		beq done
		b rep_loop
	done:
		mvns r0, r2
		bkpt #0
	`, crc32Reps, crc32Words, crc32Words*4)
	return Workload{
		Name:        "crc32",
		Description: fmt.Sprintf("%d passes of bitwise CRC-32 over a %d-word buffer", crc32Reps, crc32Words),
		Source:      src,
		Expected:    crc32Golden(crc32Reps),
	}
}

func crc32Golden(reps int) uint32 {
	buf := make([]uint32, crc32Words)
	x := uint32(1)
	for i := range buf {
		x = lcgNext(x)
		buf[i] = x
	}
	crc := uint32(0xFFFFFFFF)
	for r := 0; r < reps; r++ {
		for _, w := range buf {
			crc ^= w
			for b := 0; b < 32; b++ {
				if crc&1 != 0 {
					crc = crc>>1 ^ 0xEDB88320
				} else {
					crc >>= 1
				}
			}
		}
	}
	return ^crc
}

// EDN parameters: a 16-tap FIR over 256 samples, the inner-product profile
// of Embench's edn.
const (
	ednReps    = 12
	ednTaps    = 16
	ednSamples = 256
)

// EDN returns the FIR-filter workload.
func EDN() Workload {
	outputs := ednSamples - ednTaps + 1
	src := fmt.Sprintf(`
	.equ REPS, %d
	.equ OUTPUTS, %d
		; init taps then samples contiguously with the LCG
		li r0, 0x20000000
		li r1, %d               ; (taps+samples)*4 bytes
		movs r2, #1
	init_loop:
		movs r3, #75
		muls r2, r3
		adds r2, #74
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne init_loop

		li r6, REPS
		movs r7, #0             ; checksum
	rep_loop:
		li r4, OUTPUTS          ; n counter (counting down)
		li r0, 0x20000040       ; xPtr = samples base (taps end at +64)
	n_loop:
		li r2, 0x20000000       ; hPtr
		movs r1, r0             ; x window pointer
		movs r5, #0             ; acc
		movs r3, #%d            ; k counter
	k_loop:
		push {r4}
		ldr r4, [r2]
		adds r2, #4
		push {r3}
		ldr r3, [r1]
		adds r1, #4
		muls r3, r4
		adds r5, r5, r3
		pop {r3}
		pop {r4}
		subs r3, #1
		bne k_loop
		adds r7, r7, r5
		adds r0, #4
		subs r4, #1
		beq n_done
		b n_loop
	n_done:
		subs r6, #1
		beq done
		b rep_loop
	done:
		movs r0, r7
		bkpt #0
	`, ednReps, outputs, (ednTaps+ednSamples)*4, ednTaps)
	return Workload{
		Name:        "edn",
		Description: fmt.Sprintf("%d passes of a %d-tap FIR over %d samples", ednReps, ednTaps, ednSamples),
		Source:      src,
		Expected:    ednGolden(ednReps),
	}
}

func ednGolden(reps int) uint32 {
	mem := make([]uint32, ednTaps+ednSamples)
	x := uint32(1)
	for i := range mem {
		x = lcgNext(x)
		mem[i] = x
	}
	h := mem[:ednTaps]
	samples := mem[ednTaps:]
	var sum uint32
	for r := 0; r < reps; r++ {
		for n := 0; n+ednTaps <= ednSamples; n++ {
			var acc uint32
			for k := 0; k < ednTaps; k++ {
				acc += h[k] * samples[n+k]
			}
			sum += acc
		}
	}
	return sum
}

// Sieve parameters: Eratosthenes over sieveLimit flags, the branchy
// bit-array profile standing in for Embench's primecount.
const (
	sieveReps  = 10
	sieveLimit = 4096
)

// Sieve returns the prime-sieve workload.
func Sieve() Workload {
	src := fmt.Sprintf(`
	.equ REPS, %d
	.equ LIMIT, %d
		li r6, REPS
		movs r7, #0             ; prime-count accumulator
	rep_loop:
		; set all flags to 1, word at a time
		li r0, 0x20000000
		li r1, LIMIT            ; bytes
		li r2, 0x01010101
	fill_loop:
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne fill_loop

		; cross out multiples: p from 2 while p*p < LIMIT
		movs r4, #2             ; p
	p_loop:
		movs r0, r4
		muls r0, r4             ; p*p
		li r1, LIMIT
		cmp r0, r1
		bge count
		li r5, 0x20000000
		adds r1, r5, r4
		ldrb r2, [r1]           ; flag[p]
		cmp r2, #0
		beq next_p
		; m = p*p; while m < LIMIT: flag[m] = 0; m += p
		movs r1, r0             ; m = p*p
	m_loop:
		adds r2, r5, r1
		movs r3, #0
		strb r3, [r2]
		adds r1, r1, r4
		li r3, LIMIT
		cmp r1, r3
		blt m_loop
	next_p:
		adds r4, #1
		b p_loop

	count:
		li r0, 0x20000002       ; start at flag[2]
		li r1, LIMIT
		subs r1, #2
	count_loop:
		ldrb r2, [r0]
		adds r7, r7, r2
		adds r0, #1
		subs r1, #1
		bne count_loop
		subs r6, #1
		beq done
		b rep_loop
	done:
		movs r0, r7
		bkpt #0
	`, sieveReps, sieveLimit)
	return Workload{
		Name:        "sieve",
		Description: fmt.Sprintf("%d passes of Eratosthenes below %d (primecount stand-in)", sieveReps, sieveLimit),
		Source:      src,
		Expected:    sieveGolden(sieveReps),
	}
}

func sieveGolden(reps int) uint32 {
	var total uint32
	for r := 0; r < reps; r++ {
		flags := make([]byte, sieveLimit)
		for i := range flags {
			flags[i] = 1
		}
		for p := 2; p*p < sieveLimit; p++ {
			if flags[p] == 0 {
				continue
			}
			for m := p * p; m < sieveLimit; m += p {
				flags[m] = 0
			}
		}
		for i := 2; i < sieveLimit; i++ {
			total += uint32(flags[i])
		}
	}
	return total
}

// StrSearch parameters: naive 4-byte needle search over a 2 kB haystack,
// the byte-compare profile of Embench's string workloads.
const (
	strReps         = 30
	strHaystackSize = 2048
	strNeedleOffset = 512
)

// StrSearch returns the substring-search workload.
func StrSearch() Workload {
	src := fmt.Sprintf(`
	.equ REPS, %d
	.equ HAYBYTES, %d
		; init haystack with LCG
		li r0, 0x20000000
		li r1, HAYBYTES
		movs r2, #1
	init_loop:
		movs r3, #75
		muls r2, r3
		adds r2, #74
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne init_loop

		li r6, REPS
		movs r7, #0             ; match count
	rep_loop:
		li r0, 0x20000000       ; scan pointer
		li r1, %d               ; positions to test
	scan_loop:
		; compare 4 bytes against needle = haystack[512..515]
		li r4, 0x20000200       ; needle base
		movs r5, #4             ; needle length
		movs r2, r0             ; candidate pointer
	cmp_loop:
		ldrb r3, [r2]
		push {r2}
		ldrb r2, [r4]
		cmp r3, r2
		pop {r2}
		bne miss
		adds r2, #1
		adds r4, #1
		subs r5, #1
		bne cmp_loop
		adds r7, #1             ; full match
	miss:
		adds r0, #1
		subs r1, #1
		beq scan_done
		b scan_loop
	scan_done:
		subs r6, #1
		beq done
		b rep_loop
	done:
		movs r0, r7
		bkpt #0
	`, strReps, strHaystackSize, strHaystackSize-4+1)
	return Workload{
		Name:        "strsearch",
		Description: fmt.Sprintf("%d passes of naive 4-byte search over a %d-byte haystack", strReps, strHaystackSize),
		Source:      src,
		Expected:    strSearchGolden(strReps),
	}
}

func strSearchGolden(reps int) uint32 {
	hay := make([]byte, strHaystackSize)
	x := uint32(1)
	for i := 0; i < strHaystackSize; i += 4 {
		x = lcgNext(x)
		hay[i] = byte(x)
		hay[i+1] = byte(x >> 8)
		hay[i+2] = byte(x >> 16)
		hay[i+3] = byte(x >> 24)
	}
	needle := hay[strNeedleOffset : strNeedleOffset+4]
	var count uint32
	for pos := 0; pos+4 <= strHaystackSize; pos++ {
		match := true
		for k := 0; k < 4; k++ {
			if hay[pos+k] != needle[k] {
				match = false
				break
			}
		}
		if match {
			count++
		}
	}
	return count * uint32(reps)
}
