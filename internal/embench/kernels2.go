package embench

import "fmt"

// blockmove parameters: LDM/STM burst copies, the streaming profile that
// stresses the data memory's write path (highest write rate in the suite).
const (
	blockReps  = 60
	blockBytes = 4096
)

// BlockMove returns the burst-copy workload: blockBytes copied from one
// data-memory buffer to another in 4-word LDM/STM bursts, with a running
// checksum over the moved words.
func BlockMove() Workload {
	src := fmt.Sprintf(`
	.equ REPS, %d
	.equ BURSTS, %d
		; init source buffer with the LCG
		li r0, 0x20000000
		li r1, %d
		movs r2, #1
	init_loop:
		movs r3, #75
		muls r2, r3
		adds r2, #74
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne init_loop

		sub sp, #8
		li r0, REPS
		str r0, [sp, #0]
		movs r3, #0             ; checksum
	rep_loop:
		li r0, 0x20000000       ; src
		li r1, 0x20001000       ; dst
		li r2, BURSTS
	burst_loop:
		ldmia r0!, {r4-r7}
		stmia r1!, {r4-r7}
		adds r3, r3, r4
		adds r3, r3, r7
		subs r2, #1
		bne burst_loop
		ldr r0, [sp, #0]
		subs r0, #1
		str r0, [sp, #0]
		beq done
		b rep_loop
	done:
		movs r0, r3
		add sp, #8
		bkpt #0
	`, blockReps, blockBytes/16, blockBytes)
	return Workload{
		Name:        "blockmove",
		Description: fmt.Sprintf("%d LDM/STM burst copies of a %d-byte buffer (memory-streaming stand-in)", blockReps, blockBytes),
		Source:      src,
		Expected:    blockMoveGolden(blockReps),
	}
}

func blockMoveGolden(reps int) uint32 {
	words := blockBytes / 4
	buf := make([]uint32, words)
	x := uint32(1)
	for i := range buf {
		x = lcgNext(x)
		buf[i] = x
	}
	var sum uint32
	for r := 0; r < reps; r++ {
		for b := 0; b < words; b += 4 {
			sum += buf[b] + buf[b+3]
		}
	}
	return sum
}

// huff parameters: variable-length bit packing, the shift/branch-heavy
// profile of Embench's huffbench. Each input word contributes either a
// 4-bit or a 12-bit code (chosen by its low bit); codes never straddle
// 32-bit output words (the packer flushes first).
const (
	huffReps  = 25
	huffWords = 256
)

// Huff returns the bit-packing workload.
func Huff() Workload {
	src := fmt.Sprintf(`
	.equ REPS, %d
	.equ WORDS, %d
		; init input with the LCG
		li r0, 0x20000000
		li r1, %d
		movs r2, #1
	init_loop:
		movs r3, #75
		muls r2, r3
		adds r2, #74
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne init_loop

		sub sp, #8
		li r0, REPS
		str r0, [sp, #0]
		movs r7, #0             ; packed-stream checksum
	rep_loop:
		li r0, 0x20000000       ; src
		li r1, WORDS
		movs r2, #0             ; acc
		movs r3, #0             ; nbits
	pack_loop:
		ldr r4, [r0]
		adds r0, #4
		; choose code length by bit 0
		movs r5, #1
		ands r5, r4
		beq short_code
		; long: data = w & 0xfff, len = 12
		movs r5, #0xff
		lsls r5, r5, #4
		adds r5, #0xf           ; 0xfff
		ands r5, r4             ; data
		movs r6, #12
		b have_code
	short_code:
		movs r5, #0xf
		ands r5, r4
		movs r6, #4
	have_code:
		; flush if nbits + len > 32
		movs r4, r3
		adds r4, r4, r6
		cmp r4, #32
		ble no_flush
		adds r7, r7, r2         ; checksum += acc
		movs r2, #0
		movs r3, #0
	no_flush:
		lsls r5, r3             ; data << nbits (register shift)
		orrs r2, r5
		adds r3, r3, r6
		subs r1, #1
		bne pack_loop
		adds r7, r7, r2         ; final partial word
		ldr r0, [sp, #0]
		subs r0, #1
		str r0, [sp, #0]
		beq done
		b rep_loop
	done:
		movs r0, r7
		add sp, #8
		bkpt #0
	`, huffReps, huffWords, huffWords*4)
	return Workload{
		Name:        "huff",
		Description: fmt.Sprintf("%d passes of variable-length bit packing over %d words (huffbench stand-in)", huffReps, huffWords),
		Source:      src,
		Expected:    huffGolden(huffReps),
	}
}

func huffGolden(reps int) uint32 {
	in := make([]uint32, huffWords)
	x := uint32(1)
	for i := range in {
		x = lcgNext(x)
		in[i] = x
	}
	var checksum uint32
	for r := 0; r < reps; r++ {
		var acc uint32
		nbits := 0
		for _, w := range in {
			var data uint32
			var length int
			if w&1 != 0 {
				data, length = w&0xFFF, 12
			} else {
				data, length = w&0xF, 4
			}
			if nbits+length > 32 {
				checksum += acc
				acc, nbits = 0, 0
			}
			acc |= data << nbits
			nbits += length
		}
		checksum += acc
	}
	return checksum
}
