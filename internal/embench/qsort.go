package embench

import (
	"fmt"
	"sort"
)

// qsort parameters: iterative quicksort over qsortWords 32-bit values with
// an explicit range stack in data memory — the compare/branch/swap profile
// of Embench's sorting kernels. The implementation keeps the array base,
// pivot and a scratch pointer in high registers (r8, r10, r12), exercising
// the simulator's hi-register move path alongside the usual ALU and
// memory forms. Comparisons are unsigned (bhs/blo), mirrored exactly in
// the golden model.
const (
	qsortReps  = 8
	qsortWords = 512
)

// QSortInt returns the quicksort workload. The checksum XORs every 16th
// element of the sorted array, so both completion and correct ordering are
// verified against the golden model.
func QSortInt() Workload {
	src := fmt.Sprintf(`
	.equ REPS, %d
	.equ WORDS, %d
	; data layout: array at 0x20000000, range stack at 0x20004000
		sub sp, #8
		li r0, REPS
		str r0, [sp, #0]
		movs r7, #0             ; checksum
		li r0, 0x20000000
		mov r8, r0              ; array base lives in r8
	rep_loop:
		; (re)initialize the array with the LCG
		mov r0, r8
		li r1, %d               ; bytes
		movs r2, #1
	init_loop:
		movs r3, #75
		muls r2, r3
		adds r2, #74
		str r2, [r0]
		adds r0, #4
		subs r1, #4
		bne init_loop

		; push the initial range [0, WORDS-1]
		li r6, 0x20004000
		movs r0, #0
		str r0, [r6]
		li r1, WORDS
		subs r1, #1
		str r1, [r6, #4]
		adds r6, #8

	sort_loop:
		li r0, 0x20004000
		cmp r6, r0
		beq sorted              ; range stack empty
		subs r6, #8             ; pop [lo, hi]
		ldr r4, [r6]            ; lo
		ldr r5, [r6, #4]        ; hi
		cmp r4, r5
		bge sort_loop

		; --- Lomuto partition with pivot = a[hi] ---
		mov r3, r8
		lsls r2, r5, #2
		adds r2, r2, r3
		ldr r2, [r2]
		mov r10, r2             ; pivot value
		movs r0, r4             ; i = lo
		movs r1, r4             ; j = lo
	part_loop:
		cmp r1, r5
		bge part_done
		mov r3, r8
		lsls r2, r1, #2
		adds r2, r2, r3         ; &a[j]
		mov r12, r2
		ldr r3, [r2]            ; a[j]
		mov r2, r10
		cmp r3, r2
		bhs no_swap             ; unsigned: a[j] >= pivot
		; swap a[i] <-> a[j]
		push {r3}               ; old a[j]
		mov r3, r8
		lsls r2, r0, #2
		adds r2, r2, r3         ; &a[i]
		ldr r3, [r2]            ; old a[i]
		push {r2}               ; &a[i]
		mov r2, r12
		str r3, [r2]            ; a[j] = old a[i]
		pop {r2}
		pop {r3}
		str r3, [r2]            ; a[i] = old a[j]
		adds r0, #1             ; i++
	no_swap:
		adds r1, #1
		b part_loop
	part_done:
		; place the pivot: swap a[i] <-> a[hi]
		mov r3, r8
		lsls r2, r0, #2
		adds r2, r2, r3         ; &a[i]
		mov r12, r2
		lsls r2, r5, #2
		adds r2, r2, r3         ; &a[hi]
		ldr r3, [r2]            ; pivot (a[hi])
		push {r2}
		mov r2, r12
		ldr r1, [r2]            ; old a[i]
		str r3, [r2]            ; a[i] = pivot
		pop {r2}
		str r1, [r2]            ; a[hi] = old a[i]
		; push sub-ranges [lo, i-1] and [i+1, hi]
		movs r1, r0
		subs r1, #1
		cmp r4, r1
		bge skip_left
		str r4, [r6]
		str r1, [r6, #4]
		adds r6, #8
	skip_left:
		adds r0, #1
		cmp r0, r5
		bge skip_right
		str r0, [r6]
		str r5, [r6, #4]
		adds r6, #8
	skip_right:
		b sort_loop

	sorted:
		; checksum: XOR every 16th element
		mov r0, r8
		li r1, WORDS
		lsrs r1, r1, #4
	sum_loop:
		ldr r2, [r0]
		eors r7, r2
		adds r0, #64
		subs r1, #1
		bne sum_loop
		ldr r0, [sp, #0]
		subs r0, #1
		str r0, [sp, #0]
		beq done
		b rep_loop
	done:
		movs r0, r7
		add sp, #8
		bkpt #0
	`, qsortReps, qsortWords, qsortWords*4)
	return Workload{
		Name:        "qsort-int",
		Description: fmt.Sprintf("%d iterative quicksorts of %d words with an explicit range stack", qsortReps, qsortWords),
		Source:      src,
		Expected:    qsortGolden(qsortReps),
	}
}

func qsortGolden(reps int) uint32 {
	var checksum uint32
	for r := 0; r < reps; r++ {
		a := make([]uint32, qsortWords)
		x := uint32(1)
		for i := range a {
			x = lcgNext(x)
			a[i] = x
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		for i := 0; i < qsortWords; i += 16 {
			checksum ^= a[i]
		}
	}
	return checksum
}
