package embench

import (
	"math"
	"strings"
	"testing"
)

const runBudget = 200_000_000

func TestAllWorkloadsMatchGolden(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := Run(w, runBudget)
			if err != nil {
				t.Fatal(err)
			}
			if res.Checksum != w.Expected {
				t.Fatalf("checksum %#x, want %#x", res.Checksum, w.Expected)
			}
			if res.Cycles == 0 || res.Instructions == 0 {
				t.Fatal("no progress recorded")
			}
			if res.Cycles < res.Instructions {
				t.Fatal("cycles must be ≥ instructions")
			}
			t.Logf("%s: %d cycles, %d instr, prog %d, dr %d, dw %d (%.3f/%.3f/%.3f per cycle)",
				w.Name, res.Cycles, res.Instructions,
				res.Stats.ProgramReads, res.Stats.DataReads, res.Stats.DataWrites,
				res.ProgramReadsPerCycle(), res.DataReadsPerCycle(), res.DataWritesPerCycle())
		})
	}
}

// TestMatmultCycleAnchor pins the calibrated repetition count: the paper's
// Table II reports 20,047,348 cycles for matmul-int; the bundled workload
// must land within 1%.
func TestMatmultCycleAnchor(t *testing.T) {
	res, err := Run(MatmultInt(), runBudget)
	if err != nil {
		t.Fatal(err)
	}
	const paper = 20_047_348
	dev := math.Abs(float64(res.Cycles)-paper) / paper
	if dev > 0.01 {
		t.Errorf("matmult-int cycles = %d, paper anchor %d (%.2f%% off)",
			res.Cycles, paper, 100*dev)
	}
	t.Logf("matmult-int: %d cycles (paper %d, %.3f%% off)", res.Cycles, paper, 100*dev)
}

func TestByName(t *testing.T) {
	w, err := ByName("crc32")
	if err != nil || w.Name != "crc32" {
		t.Errorf("ByName(crc32) = %v, %v", w.Name, err)
	}
	if _, err := ByName("quicksort"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestWorkloadsSortedAndDistinct(t *testing.T) {
	ws := Workloads()
	if len(ws) < 5 {
		t.Fatalf("suite has %d workloads, want ≥ 5", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].Name <= ws[i-1].Name {
			t.Errorf("workloads not sorted: %q after %q", ws[i].Name, ws[i-1].Name)
		}
	}
	for _, w := range ws {
		if w.Description == "" || w.Source == "" {
			t.Errorf("%s: missing description or source", w.Name)
		}
	}
}

func TestAccessRatesSane(t *testing.T) {
	// Every workload fetches roughly one instruction per cycle-or-less and
	// has nonzero data traffic.
	for _, w := range Workloads() {
		res, err := Run(w, runBudget)
		if err != nil {
			t.Fatal(err)
		}
		pr := res.ProgramReadsPerCycle()
		if pr <= 0.2 || pr > 1.0 {
			t.Errorf("%s: program reads per cycle = %.3f, want (0.2, 1.0]", w.Name, pr)
		}
		if res.Stats.DataReads == 0 || res.Stats.DataWrites == 0 {
			t.Errorf("%s: expected both data reads and writes", w.Name)
		}
	}
}

func TestSieveCountsPrimes(t *testing.T) {
	// π(4096) − π(1) = 564 primes in [2, 4096).
	if got := sieveGolden(1); got != 564 {
		t.Errorf("primes below 4096 = %d, want 564", got)
	}
}

func TestMatmultGoldenRepScaling(t *testing.T) {
	// The checksum accumulates identically each repetition: reps scale it
	// modulo 2³².
	one := matmultGolden(1)
	three := matmultGolden(3)
	if three != one*3 {
		t.Errorf("golden(3) = %#x, want 3×golden(1) = %#x", three, one*3)
	}
}

func TestRunRejectsTinyBudget(t *testing.T) {
	if _, err := Run(MatmultInt(), 100); err == nil {
		t.Error("tiny cycle budget should fail")
	}
}

func TestScoreIdentityAndScaling(t *testing.T) {
	ref, err := ReferenceCycles()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < 8 {
		t.Fatalf("reference has %d workloads", len(ref))
	}
	// Identity: scoring the reference against itself gives exactly 1.
	s, err := Score(ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("self-score = %v, want 1", s)
	}
	// A uniformly 2× slower platform scores 0.5.
	slow := make(map[string]uint64, len(ref))
	for k, v := range ref {
		slow[k] = 2 * v
	}
	s, err = Score(slow)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-9 {
		t.Errorf("2× slower score = %v, want 0.5", s)
	}
	// Missing workloads and zero cycles fail.
	if _, err := Score(map[string]uint64{"crc32": 1}); err == nil {
		t.Error("partial measurement should fail")
	}
	bad := make(map[string]uint64, len(ref))
	for k := range ref {
		bad[k] = 0
	}
	if _, err := Score(bad); err == nil {
		t.Error("zero cycles should fail")
	}
	out, err := FormatReference()
	if err != nil || !strings.Contains(out, "matmult-int") {
		t.Errorf("reference table: %v", err)
	}
	// ReferenceCycles returns a copy: mutating it must not poison the cache.
	ref["matmult-int"] = 1
	again, _ := ReferenceCycles()
	if again["matmult-int"] == 1 {
		t.Error("reference cache was mutated through the returned map")
	}
}
