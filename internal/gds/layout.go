package gds

import (
	"fmt"
	"io"
	"sort"

	"ppatc/internal/edram"
)

// Layer numbering for the M3D stack. Metals M1-M15 occupy layers 1-15;
// device layers of each BEOL tier sit above 100, matching the cross
// section of the paper's Fig. 2b.
const (
	LayerCNTActive1 = 101 // CNFET tier 1 CNT film
	LayerCNTGate1   = 102
	LayerCNTSD1     = 103
	LayerCNTActive2 = 111 // CNFET tier 2
	LayerCNTGate2   = 112
	LayerCNTSD2     = 113
	LayerIGZOActive = 121 // IGZO tier
	LayerIGZOGate   = 122
	LayerIGZOSD     = 123
	LayerSiActive   = 130 // FEOL Si (periphery under the array)
	LayerSiGate     = 131
)

// M3DBitCell builds the 3T bit-cell structure: the IGZO write transistor
// on its tier, the two CNFET read transistors on tier 1, the storage-node
// routing on the inter-tier metals, and wordline/bitline stubs. Dimensions
// come from the eDRAM cell design (nanometre database units).
func M3DBitCell(d edram.CellDesign) *Structure {
	w := int32(d.CellWidth.Nanometers())
	h := int32(d.CellHeight.Nanometers())
	s := &Structure{Name: "m3d_bitcell"}
	add := func(b Boundary) { s.Elements = append(s.Elements, b) }

	// CNFET tier 1: storage and select transistors side by side.
	cnW := int32(d.StorageW * 1e9)
	add(Rect(LayerCNTActive1, 10, 10, 10+cnW+20, h/2-10))
	add(Rect(LayerCNTGate1, 10+cnW/2, 5, 10+cnW/2+30, h/2-5)) // gate over the channel
	add(Rect(LayerCNTSD1, 5, 10, 15, h/2-10))
	add(Rect(LayerCNTSD1, 15+cnW, 10, 25+cnW, h/2-10))
	// Select transistor.
	add(Rect(LayerCNTActive1, w/2, 10, w/2+cnW+20, h/2-10))
	add(Rect(LayerCNTGate1, w/2+cnW/2, 5, w/2+cnW/2+30, h/2-5))

	// IGZO tier: the write transistor spans the upper half.
	igW := int32(d.WriteW * 1e9)
	add(Rect(LayerIGZOActive, 10, h/2+10, 10+igW+20, h-10))
	add(Rect(LayerIGZOGate, 10+igW/2, h/2+5, 10+igW/2+44, h-5)) // 44 nm gate
	add(Rect(LayerIGZOSD, 5, h/2+10, 15, h-10))
	add(Rect(LayerIGZOSD, 15+igW, h/2+10, 25+igW, h-10))

	// Wordlines (M6 for RWL, M9 for the boosted WWL) run the cell width.
	add(Rect(6, 0, h/2-30, w, h/2-10))
	add(Rect(9, 0, h-30, w, h-10))
	// Bitlines (M5 for RBL, M8 for WBL) run the cell height.
	add(Rect(5, w-30, 0, w-10, h))
	add(Rect(8, 10, 0, 30, h))
	// Storage node: a short M7 strap linking the IGZO source to the
	// CNFET storage gate.
	add(Rect(7, 10+igW/2, h/4, 30+igW/2, 3*h/4))
	return s
}

// M3DSubArray builds the mat structure: rows×cols bit cells placed as an
// ARef, over a FEOL periphery outline.
func M3DSubArray(d edram.CellDesign, rows, cols int) (*Library, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gds: need positive array dims, got %d×%d", rows, cols)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	lib := NewLibrary("PPATC_M3D")
	cell := M3DBitCell(d)
	w := int32(d.CellWidth.Nanometers())
	h := int32(d.CellHeight.Nanometers())
	mat := &Structure{Name: "m3d_subarray"}
	// Si periphery outline under the whole mat.
	mat.Elements = append(mat.Elements,
		Rect(LayerSiActive, 0, 0, int32(cols)*w, int32(rows)*h),
	)
	mat.Elements = append(mat.Elements, ARef{
		Name: cell.Name,
		Cols: int16(cols), Rows: int16(rows),
		Origin: Point{0, 0}, ColStep: w, RowStep: h,
	})
	lib.Structures = append(lib.Structures, cell, mat)
	return lib, nil
}

// LayerMap writes a GDS3D-style layer map: layer number, display name and
// z-range in nanometres, so the stream renders as the 3D cross section of
// Fig. 2b.
func LayerMap(w io.Writer) error {
	type entry struct {
		layer  int
		name   string
		z0, dz int
	}
	entries := []entry{
		{int(LayerSiActive), "Si_active", 0, 50},
		{int(LayerSiGate), "Si_gate", 50, 30},
	}
	// Metals M1-M4 below tier 1, M5-M8 between tiers, M9+ above.
	z := 100
	for m := 1; m <= 15; m++ {
		entries = append(entries, entry{m, fmt.Sprintf("M%d", m), z, 40})
		z += 80
		switch m {
		case 4:
			entries = append(entries,
				entry{LayerCNTActive1, "CNT_tier1", z, 2},
				entry{LayerCNTGate1, "CNT_gate1", z + 4, 30},
				entry{LayerCNTSD1, "CNT_sd1", z + 2, 40},
			)
			z += 60
		case 6:
			entries = append(entries,
				entry{LayerCNTActive2, "CNT_tier2", z, 2},
				entry{LayerCNTGate2, "CNT_gate2", z + 4, 30},
				entry{LayerCNTSD2, "CNT_sd2", z + 2, 40},
			)
			z += 60
		case 8:
			entries = append(entries,
				entry{LayerIGZOActive, "IGZO_tier", z, 10},
				entry{LayerIGZOGate, "IGZO_gate", z + 12, 30},
				entry{LayerIGZOSD, "IGZO_sd", z + 10, 40},
			)
			z += 60
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].layer < entries[j].layer })
	if _, err := fmt.Fprintln(w, "# GDS3D layer map: Layer Datatype Name Start Height (nm)"); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%d\t0\t%s\t%d\t%d\n", e.layer, e.name, e.z0, e.dz); err != nil {
			return err
		}
	}
	return nil
}
