package gds

import (
	"fmt"
	"sort"
)

// DRC-lite: a minimal design-rule check over a structure's rectangles.
// Real sign-off DRC runs thousands of rules; the three implemented here
// catch the errors a layout generator can actually make — degenerate or
// sub-minimum-width shapes, shapes escaping the cell outline, and
// unintended same-layer overlaps — and keep the generated artifact honest.

// DRCRules parameterizes the checks.
type DRCRules struct {
	// MinWidth is the minimum rectangle width/height per layer in
	// database units; layers absent from the map use Default.
	MinWidth map[int16]int32
	// Default is the fallback minimum width.
	Default int32
	// CellWidth and CellHeight bound the allowed geometry (0 = unchecked).
	CellWidth, CellHeight int32
	// AllowOverlap lists layers where same-layer overlap is legal
	// (e.g. routing layers where shapes merge).
	AllowOverlap map[int16]bool
}

// DefaultDRCRules returns rules matched to the M3D bit-cell generator:
// 2 nm minimum for the atomically thin CNT film, 10 nm for everything
// else, overlap allowed on the metal routing layers.
func DefaultDRCRules(cellW, cellH int32) DRCRules {
	allow := map[int16]bool{}
	for m := int16(1); m <= 15; m++ {
		allow[m] = true
	}
	return DRCRules{
		MinWidth: map[int16]int32{
			LayerCNTActive1: 2,
			LayerCNTActive2: 2,
		},
		Default:      10,
		CellWidth:    cellW,
		CellHeight:   cellH,
		AllowOverlap: allow,
	}
}

// Violation is one DRC finding.
type Violation struct {
	// Rule names the violated check.
	Rule string
	// Layer is the offending layer.
	Layer int16
	// Detail describes the geometry.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s on layer %d: %s", v.Rule, v.Layer, v.Detail)
}

// rect is an axis-aligned bounding box.
type rect struct {
	x0, y0, x1, y1 int32
	layer          int16
}

// normalizeRect extracts the bounding box of a boundary's vertices.
func normalizeRect(b Boundary) rect {
	r := rect{layer: b.Layer}
	if len(b.XY) == 0 {
		return r
	}
	r.x0, r.y0 = b.XY[0].X, b.XY[0].Y
	r.x1, r.y1 = r.x0, r.y0
	for _, p := range b.XY {
		if p.X < r.x0 {
			r.x0 = p.X
		}
		if p.X > r.x1 {
			r.x1 = p.X
		}
		if p.Y < r.y0 {
			r.y0 = p.Y
		}
		if p.Y > r.y1 {
			r.y1 = p.Y
		}
	}
	return r
}

// overlaps reports strict interior overlap (shared edges are legal).
func (a rect) overlaps(b rect) bool {
	return a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1
}

// CheckStructure runs the DRC-lite rules over a structure's boundaries
// (references are not expanded). Violations are returned sorted by layer.
func CheckStructure(s *Structure, rules DRCRules) []Violation {
	var out []Violation
	byLayer := map[int16][]rect{}
	for _, e := range s.Elements {
		b, ok := e.(Boundary)
		if !ok {
			continue
		}
		r := normalizeRect(b)
		byLayer[r.layer] = append(byLayer[r.layer], r)

		min := rules.Default
		if m, ok := rules.MinWidth[r.layer]; ok {
			min = m
		}
		w, h := r.x1-r.x0, r.y1-r.y0
		if w <= 0 || h <= 0 {
			out = append(out, Violation{
				Rule: "degenerate-shape", Layer: r.layer,
				Detail: fmt.Sprintf("box (%d,%d)-(%d,%d) has no area", r.x0, r.y0, r.x1, r.y1),
			})
			continue
		}
		if w < min || h < min {
			out = append(out, Violation{
				Rule: "min-width", Layer: r.layer,
				Detail: fmt.Sprintf("%d×%d below minimum %d", w, h, min),
			})
		}
		if rules.CellWidth > 0 && (r.x0 < 0 || r.x1 > rules.CellWidth) ||
			rules.CellHeight > 0 && (r.y0 < 0 || r.y1 > rules.CellHeight) {
			out = append(out, Violation{
				Rule: "outside-cell", Layer: r.layer,
				Detail: fmt.Sprintf("box (%d,%d)-(%d,%d) escapes %d×%d cell",
					r.x0, r.y0, r.x1, r.y1, rules.CellWidth, rules.CellHeight),
			})
		}
	}
	// Same-layer overlap.
	for layer, rects := range byLayer {
		if rules.AllowOverlap[layer] {
			continue
		}
		for i := 0; i < len(rects); i++ {
			for j := i + 1; j < len(rects); j++ {
				if rects[i].overlaps(rects[j]) {
					out = append(out, Violation{
						Rule: "same-layer-overlap", Layer: layer,
						Detail: fmt.Sprintf("boxes %d and %d intersect", i, j),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}
