package gds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Decode parses a GDSII stream produced by Encode (the subset of records
// this package writes), primarily for round-trip verification.
func Decode(r io.Reader) (*Library, error) {
	lib := &Library{}
	var cur *Structure
	var curElem func(rec byte, dt byte, payload []byte) error
	var pendingBoundary *Boundary
	var pendingSRef *SRef
	var pendingARef *ARef

	finishElem := func() {
		if cur == nil {
			return
		}
		switch {
		case pendingBoundary != nil:
			cur.Elements = append(cur.Elements, *pendingBoundary)
			pendingBoundary = nil
		case pendingSRef != nil:
			cur.Elements = append(cur.Elements, *pendingSRef)
			pendingSRef = nil
		case pendingARef != nil:
			cur.Elements = append(cur.Elements, *pendingARef)
			pendingARef = nil
		}
	}
	_ = curElem

	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return lib, nil
			}
			return nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[:2]))
		if n < 4 {
			return nil, fmt.Errorf("gds: record length %d too short", n)
		}
		payload := make([]byte, n-4)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		rec := hdr[2]
		switch rec {
		case recLibName:
			lib.Name = trimASCII(payload)
		case recUnits:
			if len(payload) != 16 {
				return nil, errors.New("gds: malformed UNITS")
			}
			lib.UserUnitsPerDBUnit = parseReal8(payload[:8])
			lib.MetersPerDBUnit = parseReal8(payload[8:])
		case recBgnStr:
			cur = &Structure{}
		case recStrName:
			if cur == nil {
				return nil, errors.New("gds: STRNAME outside structure")
			}
			cur.Name = trimASCII(payload)
		case recEndStr:
			if cur == nil {
				return nil, errors.New("gds: ENDSTR outside structure")
			}
			lib.Structures = append(lib.Structures, cur)
			cur = nil
		case recBoundary:
			pendingBoundary = &Boundary{}
		case recSRef:
			pendingSRef = &SRef{}
		case recARef:
			pendingARef = &ARef{}
		case recLayer:
			if pendingBoundary != nil {
				pendingBoundary.Layer = int16(binary.BigEndian.Uint16(payload))
			}
		case recDataType:
			if pendingBoundary != nil {
				pendingBoundary.DataType = int16(binary.BigEndian.Uint16(payload))
			}
		case recSName:
			name := trimASCII(payload)
			if pendingSRef != nil {
				pendingSRef.Name = name
			}
			if pendingARef != nil {
				pendingARef.Name = name
			}
		case recColRow:
			if pendingARef != nil && len(payload) == 4 {
				pendingARef.Cols = int16(binary.BigEndian.Uint16(payload[:2]))
				pendingARef.Rows = int16(binary.BigEndian.Uint16(payload[2:]))
			}
		case recXY:
			pts := make([]Point, 0, len(payload)/8)
			for i := 0; i+8 <= len(payload); i += 8 {
				pts = append(pts, Point{
					X: int32(binary.BigEndian.Uint32(payload[i : i+4])),
					Y: int32(binary.BigEndian.Uint32(payload[i+4 : i+8])),
				})
			}
			switch {
			case pendingBoundary != nil:
				pendingBoundary.XY = pts
			case pendingSRef != nil && len(pts) > 0:
				pendingSRef.Origin = pts[0]
			case pendingARef != nil && len(pts) > 0:
				pendingARef.Origin = pts[0]
				if len(pts) == 3 && pendingARef.Cols > 0 && pendingARef.Rows > 0 {
					pendingARef.ColStep = (pts[1].X - pts[0].X) / int32(pendingARef.Cols)
					pendingARef.RowStep = (pts[2].Y - pts[0].Y) / int32(pendingARef.Rows)
				}
			}
		case recEndEl:
			finishElem()
		case recHeader, recBgnLib, recEndLib:
			// Structural records with no retained payload.
		default:
			return nil, fmt.Errorf("gds: unsupported record %#x", rec)
		}
	}
}

func trimASCII(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}
