// Package gds implements a GDSII stream-format writer and reader and a
// generator for the M3D eDRAM layout. The paper's artifact repository
// includes a circuit layout (GDS) of the M3D process with instructions to
// render it in 3D using GDS3D; this package produces the equivalent
// artifact: the 3T bit-cell with its device layers on every tier, arrayed
// into a sub-array mat, plus a GDS3D-style layer map.
package gds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// GDSII record types used here.
const (
	recHeader   = 0x00
	recBgnLib   = 0x01
	recLibName  = 0x02
	recUnits    = 0x03
	recEndLib   = 0x04
	recBgnStr   = 0x05
	recStrName  = 0x06
	recEndStr   = 0x07
	recBoundary = 0x08
	recSRef     = 0x0A
	recARef     = 0x0B
	recLayer    = 0x0D
	recDataType = 0x0E
	recXY       = 0x10
	recEndEl    = 0x11
	recSName    = 0x12
	recColRow   = 0x13
)

// GDSII data types.
const (
	dtNone  = 0x00
	dtInt16 = 0x02
	dtInt32 = 0x03
	dtReal8 = 0x05
	dtASCII = 0x06
)

// Point is a coordinate in database units.
type Point struct{ X, Y int32 }

// Element is a drawable element of a structure.
type Element interface {
	encode(w *writer) error
}

// Boundary is a closed polygon on a layer.
type Boundary struct {
	// Layer and DataType select the drawing layer.
	Layer, DataType int16
	// XY are the vertices; the closing vertex is appended automatically
	// if absent.
	XY []Point
}

// Rect builds a rectangular boundary from two corners.
func Rect(layer int16, x0, y0, x1, y1 int32) Boundary {
	return Boundary{
		Layer: layer,
		XY: []Point{
			{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1},
		},
	}
}

func (b Boundary) encode(w *writer) error {
	if len(b.XY) < 3 {
		return errors.New("gds: boundary needs at least 3 vertices")
	}
	w.record(recBoundary, dtNone, nil)
	w.record(recLayer, dtInt16, i16(b.Layer))
	w.record(recDataType, dtInt16, i16(b.DataType))
	pts := b.XY
	if pts[0] != pts[len(pts)-1] {
		pts = append(append([]Point{}, pts...), pts[0])
	}
	w.record(recXY, dtInt32, xy(pts))
	w.record(recEndEl, dtNone, nil)
	return w.err
}

// SRef places one instance of a named structure.
type SRef struct {
	// Name is the referenced structure.
	Name string
	// Origin is the placement point.
	Origin Point
}

func (s SRef) encode(w *writer) error {
	w.record(recSRef, dtNone, nil)
	w.record(recSName, dtASCII, ascii(s.Name))
	w.record(recXY, dtInt32, xy([]Point{s.Origin}))
	w.record(recEndEl, dtNone, nil)
	return w.err
}

// ARef places a cols×rows array of a named structure.
type ARef struct {
	// Name is the referenced structure.
	Name string
	// Cols and Rows are the array dimensions.
	Cols, Rows int16
	// Origin is the array anchor; ColStep and RowStep the pitches in
	// database units.
	Origin           Point
	ColStep, RowStep int32
}

func (a ARef) encode(w *writer) error {
	if a.Cols <= 0 || a.Rows <= 0 {
		return errors.New("gds: array needs positive dimensions")
	}
	w.record(recARef, dtNone, nil)
	w.record(recSName, dtASCII, ascii(a.Name))
	w.record(recColRow, dtInt16, append(i16(a.Cols), i16(a.Rows)...))
	// GDSII ARef XY: origin, origin + cols·colstep (x axis), origin +
	// rows·rowstep (y axis).
	pts := []Point{
		a.Origin,
		{a.Origin.X + int32(a.Cols)*a.ColStep, a.Origin.Y},
		{a.Origin.X, a.Origin.Y + int32(a.Rows)*a.RowStep},
	}
	w.record(recXY, dtInt32, xy(pts))
	w.record(recEndEl, dtNone, nil)
	return w.err
}

// Structure is a named cell.
type Structure struct {
	// Name is the cell name.
	Name string
	// Elements are drawn in order.
	Elements []Element
}

// Library is a GDSII library.
type Library struct {
	// Name is the library name.
	Name string
	// UserUnitsPerDBUnit is the user unit expressed in database units
	// (typically 1e-3: one database unit is a thousandth of a micron).
	UserUnitsPerDBUnit float64
	// MetersPerDBUnit is the physical size of one database unit.
	MetersPerDBUnit float64
	// Structures are the cells.
	Structures []*Structure
}

// NewLibrary returns a library with nanometre database units.
func NewLibrary(name string) *Library {
	return &Library{
		Name:               name,
		UserUnitsPerDBUnit: 1e-3, // user unit = µm, db unit = nm
		MetersPerDBUnit:    1e-9,
	}
}

// Encode writes the library as a GDSII stream.
func (l *Library) Encode(out io.Writer) error {
	if l.Name == "" {
		return errors.New("gds: library must be named")
	}
	if l.UserUnitsPerDBUnit <= 0 || l.MetersPerDBUnit <= 0 {
		return errors.New("gds: units must be positive")
	}
	w := &writer{w: out}
	w.record(recHeader, dtInt16, i16(600)) // GDSII v6
	w.record(recBgnLib, dtInt16, zeroTimestamp())
	w.record(recLibName, dtASCII, ascii(l.Name))
	w.record(recUnits, dtReal8, append(real8(l.UserUnitsPerDBUnit), real8(l.MetersPerDBUnit)...))
	for _, s := range l.Structures {
		if s.Name == "" {
			return errors.New("gds: structure must be named")
		}
		w.record(recBgnStr, dtInt16, zeroTimestamp())
		w.record(recStrName, dtASCII, ascii(s.Name))
		for _, e := range s.Elements {
			if err := e.encode(w); err != nil {
				return err
			}
		}
		w.record(recEndStr, dtNone, nil)
	}
	w.record(recEndLib, dtNone, nil)
	return w.err
}

// writer emits length-prefixed GDSII records.
type writer struct {
	w   io.Writer
	err error
}

func (w *writer) record(recType, dataType byte, payload []byte) {
	if w.err != nil {
		return
	}
	n := 4 + len(payload)
	if len(payload)%2 != 0 {
		w.err = fmt.Errorf("gds: odd payload for record %#x", recType)
		return
	}
	hdr := []byte{byte(n >> 8), byte(n), recType, dataType}
	if _, err := w.w.Write(hdr); err != nil {
		w.err = err
		return
	}
	if len(payload) > 0 {
		if _, err := w.w.Write(payload); err != nil {
			w.err = err
		}
	}
}

// i16 encodes a big-endian int16.
func i16(v int16) []byte {
	out := make([]byte, 2)
	binary.BigEndian.PutUint16(out, uint16(v))
	return out
}

// xy encodes points as big-endian int32 pairs.
func xy(pts []Point) []byte {
	out := make([]byte, 0, 8*len(pts))
	var buf [4]byte
	for _, p := range pts {
		binary.BigEndian.PutUint32(buf[:], uint32(p.X))
		out = append(out, buf[:]...)
		binary.BigEndian.PutUint32(buf[:], uint32(p.Y))
		out = append(out, buf[:]...)
	}
	return out
}

// ascii encodes a string padded to even length.
func ascii(s string) []byte {
	b := []byte(s)
	if len(b)%2 != 0 {
		b = append(b, 0)
	}
	return b
}

// zeroTimestamp encodes the 12 int16 modification/access time fields.
func zeroTimestamp() []byte {
	return make([]byte, 24)
}

// real8 encodes an IEEE float64 as the GDSII excess-64 base-16 real.
func real8(v float64) []byte {
	out := make([]byte, 8)
	if v == 0 {
		return out
	}
	neg := v < 0
	if neg {
		v = -v
	}
	// v = mantissa × 16^exp with mantissa in [1/16, 1).
	exp := 0
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	mant := uint64(v * math.Pow(2, 56))
	b := byte(exp + 64)
	if neg {
		b |= 0x80
	}
	out[0] = b
	for i := 0; i < 7; i++ {
		out[7-i] = byte(mant >> (8 * i))
	}
	return out
}

// parseReal8 decodes the GDSII real format.
func parseReal8(b []byte) float64 {
	if len(b) != 8 {
		return 0
	}
	neg := b[0]&0x80 != 0
	exp := int(b[0]&0x7F) - 64
	var mant uint64
	for i := 1; i < 8; i++ {
		mant = mant<<8 | uint64(b[i])
	}
	v := float64(mant) / math.Pow(2, 56) * math.Pow(16, float64(exp))
	if neg {
		v = -v
	}
	return v
}
