package gds

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ppatc/internal/edram"
)

func TestReal8RoundTrip(t *testing.T) {
	values := []float64{0, 1e-3, 1e-9, 1, 0.5, 123.456, -2.5e-6}
	for _, v := range values {
		got := parseReal8(real8(v))
		if math.Abs(got-v) > 1e-12*math.Max(1, math.Abs(v)) {
			t.Errorf("real8 round trip: %v → %v", v, got)
		}
	}
}

func TestReal8Property(t *testing.T) {
	f := func(mant uint32, expSel uint8) bool {
		exp := float64(int(expSel%24) - 12)
		v := (float64(mant)/float64(1<<32) + 0.001) * math.Pow(10, exp)
		got := parseReal8(real8(v))
		return math.Abs(got-v) <= 1e-10*math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLibraryEncodeDecodeRoundTrip(t *testing.T) {
	lib := NewLibrary("TESTLIB")
	cell := &Structure{
		Name: "unit",
		Elements: []Element{
			Rect(5, 0, 0, 100, 200),
			Boundary{Layer: 7, DataType: 1, XY: []Point{{0, 0}, {50, 0}, {25, 40}}},
		},
	}
	top := &Structure{
		Name: "top",
		Elements: []Element{
			SRef{Name: "unit", Origin: Point{10, 20}},
			ARef{Name: "unit", Cols: 4, Rows: 3, Origin: Point{0, 0}, ColStep: 120, RowStep: 220},
		},
	}
	lib.Structures = append(lib.Structures, cell, top)

	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Stream starts with the HEADER record.
	if b := buf.Bytes(); len(b) < 4 || b[2] != recHeader {
		t.Fatal("stream does not start with HEADER")
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "TESTLIB" {
		t.Errorf("library name = %q", back.Name)
	}
	if math.Abs(back.UserUnitsPerDBUnit-1e-3) > 1e-15 || math.Abs(back.MetersPerDBUnit-1e-9) > 1e-21 {
		t.Errorf("units = %v, %v", back.UserUnitsPerDBUnit, back.MetersPerDBUnit)
	}
	if len(back.Structures) != 2 {
		t.Fatalf("structures = %d, want 2", len(back.Structures))
	}
	u := back.Structures[0]
	if u.Name != "unit" || len(u.Elements) != 2 {
		t.Fatalf("unit cell decoded wrong: %q with %d elements", u.Name, len(u.Elements))
	}
	b0, ok := u.Elements[0].(Boundary)
	if !ok || b0.Layer != 5 {
		t.Fatalf("first element = %#v", u.Elements[0])
	}
	// Closing vertex appended.
	if b0.XY[0] != b0.XY[len(b0.XY)-1] {
		t.Error("boundary not closed")
	}
	tp := back.Structures[1]
	ar, ok := tp.Elements[1].(ARef)
	if !ok || ar.Cols != 4 || ar.Rows != 3 || ar.ColStep != 120 || ar.RowStep != 220 {
		t.Fatalf("aref decoded wrong: %#v", tp.Elements[1])
	}
	sr, ok := tp.Elements[0].(SRef)
	if !ok || sr.Origin != (Point{10, 20}) {
		t.Fatalf("sref decoded wrong: %#v", tp.Elements[0])
	}
}

func TestEncodeValidation(t *testing.T) {
	var buf bytes.Buffer
	lib := &Library{}
	if err := lib.Encode(&buf); err == nil {
		t.Error("unnamed library should fail")
	}
	lib = NewLibrary("X")
	lib.Structures = append(lib.Structures, &Structure{})
	if err := lib.Encode(&buf); err == nil {
		t.Error("unnamed structure should fail")
	}
	lib = NewLibrary("X")
	lib.Structures = append(lib.Structures, &Structure{
		Name:     "bad",
		Elements: []Element{Boundary{Layer: 1, XY: []Point{{0, 0}}}},
	})
	if err := lib.Encode(&buf); err == nil {
		t.Error("degenerate boundary should fail")
	}
	lib = NewLibrary("X")
	lib.Structures = append(lib.Structures, &Structure{
		Name:     "bad",
		Elements: []Element{ARef{Name: "u", Cols: 0, Rows: 1}},
	})
	if err := lib.Encode(&buf); err == nil {
		t.Error("zero-column array should fail")
	}
}

func TestM3DSubArrayGeneration(t *testing.T) {
	lib, err := M3DSubArray(edram.M3DCellDesign(), 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 500 {
		t.Fatalf("suspiciously small GDS: %d bytes", buf.Len())
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Structures) != 2 {
		t.Fatalf("structures = %d, want bitcell + subarray", len(back.Structures))
	}
	// The bit cell must draw on the IGZO and CNT tiers and the metals.
	layers := map[int16]bool{}
	for _, e := range back.Structures[0].Elements {
		if b, ok := e.(Boundary); ok {
			layers[b.Layer] = true
		}
	}
	for _, want := range []int16{LayerCNTActive1, LayerIGZOActive, 5, 9} {
		if !layers[want] {
			t.Errorf("bit cell missing layer %d", want)
		}
	}
	// The mat places a 128×128 array at the cell pitch.
	var found bool
	for _, e := range back.Structures[1].Elements {
		if ar, ok := e.(ARef); ok {
			found = true
			if ar.Cols != 128 || ar.Rows != 128 {
				t.Errorf("array = %d×%d, want 128×128", ar.Cols, ar.Rows)
			}
			if ar.ColStep != int32(edram.M3DCellDesign().CellWidth.Nanometers()) {
				t.Errorf("column pitch = %d", ar.ColStep)
			}
		}
	}
	if !found {
		t.Error("sub-array has no ARef")
	}
	if _, err := M3DSubArray(edram.M3DCellDesign(), 0, 128); err == nil {
		t.Error("zero rows should fail")
	}
}

func TestLayerMap(t *testing.T) {
	var buf bytes.Buffer
	if err := LayerMap(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"M1", "M15", "CNT_tier1", "CNT_tier2", "IGZO_tier", "Si_active"} {
		if !strings.Contains(out, want) {
			t.Errorf("layer map missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 20 {
		t.Errorf("layer map has %d lines, want ≥ 20", len(lines))
	}
}

func TestDRCCleanBitCell(t *testing.T) {
	d := edram.M3DCellDesign()
	cell := M3DBitCell(d)
	rules := DefaultDRCRules(int32(d.CellWidth.Nanometers()), int32(d.CellHeight.Nanometers()))
	violations := CheckStructure(cell, rules)
	for _, v := range violations {
		t.Errorf("generated bit cell violates DRC: %s", v)
	}
}

func TestDRCDetectsViolations(t *testing.T) {
	s := &Structure{
		Name: "bad",
		Elements: []Element{
			Rect(50, 0, 0, 5, 100),   // min-width (5 < 10)
			Rect(50, 0, 0, 100, 0),   // degenerate
			Rect(51, -10, 0, 50, 50), // outside cell
			Rect(52, 0, 0, 50, 50),   // overlap pair
			Rect(52, 25, 25, 75, 75), //   "
			Rect(1, 0, 0, 50, 50),    // metal overlap: allowed
			Rect(1, 25, 25, 75, 75),  //   "
		},
	}
	rules := DefaultDRCRules(200, 200)
	violations := CheckStructure(s, rules)
	got := map[string]int{}
	for _, v := range violations {
		got[v.Rule]++
		if v.String() == "" {
			t.Error("empty violation string")
		}
	}
	if got["min-width"] != 1 {
		t.Errorf("min-width findings = %d, want 1", got["min-width"])
	}
	if got["degenerate-shape"] != 1 {
		t.Errorf("degenerate findings = %d, want 1", got["degenerate-shape"])
	}
	if got["outside-cell"] != 1 {
		t.Errorf("outside-cell findings = %d, want 1", got["outside-cell"])
	}
	if got["same-layer-overlap"] != 1 {
		t.Errorf("overlap findings = %d, want 1 (metal overlap is legal)", got["same-layer-overlap"])
	}
}
