package power

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppatc/internal/embench"
	"ppatc/internal/thumb"
	"ppatc/internal/units"
)

func TestVCDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "testbench")
	clk, err := w.Declare("clk", 1)
	if err != nil {
		t.Fatal(err)
	}
	bus, err := w.Declare("bus", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := w.Change(i, clk, i%2); err != nil {
			t.Fatal(err)
		}
		if err := w.Change(i, bus, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$timescale 1ns", "$scope module testbench", "$var wire 1", "$var wire 8", "$enddefinitions"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Signals(); len(got) != 2 || got[0] != "bus" || got[1] != "clk" {
		t.Fatalf("signals = %v", got)
	}
	n, err := d.Toggles("clk")
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("clk toggles = %d, want 9", n)
	}
	v, err := d.ValueAt("bus", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Errorf("bus at t=4 = %d, want 12", v)
	}
	if _, err := d.Toggles("nosuch"); err == nil {
		t.Error("unknown signal should fail")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "tb")
	if _, err := w.Declare("", 1); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := w.Declare("x", 0); err == nil {
		t.Error("zero width should fail")
	}
	id, err := w.Declare("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Change(5, id, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Declare("late", 1); err == nil {
		t.Error("declaration after first change should fail")
	}
	if err := w.Change(3, id, 0); err == nil {
		t.Error("time going backwards should fail")
	}
	if err := w.Change(6, SignalID(99), 0); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestDynamicEnergyCV2(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "tb")
	clk, _ := w.Declare("clk", 1)
	for i := uint64(0); i < 101; i++ {
		if err := w.Change(i, clk, i%2); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 100 toggles × 1 fF × 0.7² = 49 fJ.
	e, err := DynamicEnergy(d, SignalEnergy{"clk": 1e-15}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * 1e-15 * 0.49
	if math.Abs(e.Joules()-want) > 1e-21 {
		t.Errorf("energy = %v, want %v", e.Joules(), want)
	}
	if _, err := DynamicEnergy(d, SignalEnergy{"clk": -1}, 0.7); err == nil {
		t.Error("negative cap should fail")
	}
	if _, err := DynamicEnergy(d, nil, 0); err == nil {
		t.Error("zero vdd should fail")
	}
}

func TestTraceWorkloadAndRecoverCounts(t *testing.T) {
	// Trace a small workload; the VCD's final counters must equal the
	// simulator's.
	w, err := embench.ByName("sieve")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := thumb.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	mem := thumb.NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	cpu := thumb.NewCPU(mem)
	var buf bytes.Buffer
	res, err := Trace(cpu, &buf, 1<<32, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Samples < 3 {
		t.Fatalf("degenerate trace: %+v", res)
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := AccessCountsFromVCD(d)
	if err != nil {
		t.Fatal(err)
	}
	if st != res.Stats {
		t.Errorf("VCD counters %+v != simulator %+v", st, res.Stats)
	}
	// The halted strobe ends high.
	h, err := d.ValueAt("halted", res.Cycles+1)
	if err != nil || h != 1 {
		t.Errorf("halted at end = %d, %v; want 1", h, err)
	}
}

func TestTraceValidation(t *testing.T) {
	mem := thumb.NewMemory()
	cpu := thumb.NewCPU(mem)
	var buf bytes.Buffer
	if _, err := Trace(cpu, &buf, 100, 0); err == nil {
		t.Error("zero sample interval should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"$var wire x ! name $end\n$enddefinitions $end\n",
		"$enddefinitions $end\n#notanumber\n",
		"$enddefinitions $end\n#1\n1%\n",        // undeclared code
		"$enddefinitions $end\n#1\nb10\n",       // malformed vector
		"$enddefinitions $end\n#1\nzz\n",        // unrecognized line
		"$enddefinitions $end\n#1\nbxx yy zz\n", // malformed vector fields
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestPowerTraceReconstruction(t *testing.T) {
	w, err := embench.ByName("edn")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := thumb.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	mem := thumb.NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	cpu := thumb.NewCPU(mem)
	var buf bytes.Buffer
	res, err := Trace(cpu, &buf, 1<<32, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e := AccessEnergies{
		ProgramRead:   19e-12,
		DataRead:      19e-12,
		DataWrite:     18e-12,
		BaselinePower: units.Microwatts(500),
	}
	clk := units.Megahertz(500)
	trace, err := PowerTrace(d, e, clk)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 3 {
		t.Fatalf("trace has %d intervals", len(trace))
	}
	mean, err := MeanPower(trace)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against direct accounting from the final counters.
	direct := e.BaselinePower.Watts() +
		(float64(res.Stats.ProgramReads)*e.ProgramRead+
			float64(res.Stats.DataReads)*e.DataRead+
			float64(res.Stats.DataWrites)*e.DataWrite)/
			(float64(res.Cycles)*clk.PeriodSeconds())
	if math.Abs(mean.Watts()-direct)/direct > 1e-9 {
		t.Errorf("mean power %v != direct accounting %v", mean.Watts(), direct)
	}
	// Every interval is at least the baseline.
	for _, iv := range trace {
		if iv.Power.Watts() < e.BaselinePower.Watts() {
			t.Fatal("interval power below baseline")
		}
	}
	out, err := FormatPowerTrace(trace, 40)
	if err != nil || !strings.Contains(out, "mW |") {
		t.Errorf("format failed: %v", err)
	}
}

func TestPowerTraceValidation(t *testing.T) {
	d := &Dump{signals: map[string][]Event{}}
	if _, err := PowerTrace(d, AccessEnergies{}, units.Megahertz(500)); err == nil {
		t.Error("missing signals should fail")
	}
	if _, err := PowerTrace(d, AccessEnergies{ProgramRead: -1}, units.Megahertz(500)); err == nil {
		t.Error("negative energy should fail")
	}
	if _, err := MeanPower(nil); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := FormatPowerTrace(nil, 40); err == nil {
		t.Error("empty trace format should fail")
	}
}
