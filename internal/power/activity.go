package power

import (
	"errors"
	"fmt"
	"io"

	"ppatc/internal/thumb"
	"ppatc/internal/units"
)

// SignalEnergy maps a signal name to the effective switched capacitance
// (farads) one toggle of that signal represents.
type SignalEnergy map[string]float64

// DynamicEnergy converts a dump's switching activity into CV² energy:
// E = Σ_signals toggles × C_signal × VDD².
func DynamicEnergy(d *Dump, caps SignalEnergy, vdd float64) (units.Energy, error) {
	if vdd <= 0 {
		return 0, errors.New("power: VDD must be positive")
	}
	var total float64
	for name, c := range caps {
		if c < 0 {
			return 0, fmt.Errorf("power: negative capacitance for %q", name)
		}
		n, err := d.Toggles(name)
		if err != nil {
			return 0, err
		}
		total += float64(n) * c * vdd * vdd
	}
	return units.Joules(total), nil
}

// TraceResult reports a traced simulation.
type TraceResult struct {
	// Cycles and Instructions echo the CPU counters at halt.
	Cycles, Instructions uint64
	// Stats is the memory traffic.
	Stats thumb.AccessStats
	// Samples is the number of VCD time points emitted.
	Samples int
}

// Trace runs a CPU until halt (or the cycle budget) while recording a VCD
// with the paper's Step-4 signals: the program counter bus, cumulative
// access counters for the two memories, and per-sample access strobes.
// sampleEvery sets the cycle granularity of the dump.
func Trace(cpu *thumb.CPU, out io.Writer, maxCycles, sampleEvery uint64) (TraceResult, error) {
	if sampleEvery == 0 {
		return TraceResult{}, errors.New("power: sample interval must be positive")
	}
	w := NewWriter(out, "m0")
	pcID, err := w.Declare("pc", 32)
	if err != nil {
		return TraceResult{}, err
	}
	progID, err := w.Declare("prog_reads", 32)
	if err != nil {
		return TraceResult{}, err
	}
	drID, err := w.Declare("data_reads", 32)
	if err != nil {
		return TraceResult{}, err
	}
	dwID, err := w.Declare("data_writes", 32)
	if err != nil {
		return TraceResult{}, err
	}
	haltID, err := w.Declare("halted", 1)
	if err != nil {
		return TraceResult{}, err
	}

	res := TraceResult{}
	emit := func() error {
		t := cpu.Cycles
		if err := w.Change(t, pcID, uint64(cpu.R[15])); err != nil {
			return err
		}
		if err := w.Change(t, progID, cpu.Mem.Stats.ProgramReads); err != nil {
			return err
		}
		if err := w.Change(t, drID, cpu.Mem.Stats.DataReads); err != nil {
			return err
		}
		if err := w.Change(t, dwID, cpu.Mem.Stats.DataWrites); err != nil {
			return err
		}
		h := uint64(0)
		if cpu.Halted {
			h = 1
		}
		if err := w.Change(t, haltID, h); err != nil {
			return err
		}
		res.Samples++
		return nil
	}

	if err := emit(); err != nil {
		return TraceResult{}, err
	}
	next := sampleEvery
	for !cpu.Halted {
		if cpu.Cycles >= maxCycles {
			return TraceResult{}, thumb.ErrCycleBudget
		}
		if err := cpu.Step(); err != nil {
			return TraceResult{}, err
		}
		if cpu.Cycles >= next {
			if err := emit(); err != nil {
				return TraceResult{}, err
			}
			next = cpu.Cycles + sampleEvery
		}
	}
	if err := emit(); err != nil {
		return TraceResult{}, err
	}
	if err := w.Flush(); err != nil {
		return TraceResult{}, err
	}
	res.Cycles = cpu.Cycles
	res.Instructions = cpu.Instructions
	res.Stats = cpu.Mem.Stats
	return res, nil
}

// AccessCountsFromVCD recovers the final access counters from a trace dump
// — demonstrating the paper's flow of deriving memory access statistics
// from RTL waveforms rather than from the simulator directly.
func AccessCountsFromVCD(d *Dump) (thumb.AccessStats, error) {
	var st thumb.AccessStats
	last := func(name string) (uint64, error) {
		ev, err := d.Events(name)
		if err != nil {
			return 0, err
		}
		if len(ev) == 0 {
			return 0, nil
		}
		return ev[len(ev)-1].Value, nil
	}
	var err error
	if st.ProgramReads, err = last("prog_reads"); err != nil {
		return st, err
	}
	if st.DataReads, err = last("data_reads"); err != nil {
		return st, err
	}
	if st.DataWrites, err = last("data_writes"); err != nil {
		return st, err
	}
	return st, nil
}
