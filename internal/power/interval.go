package power

import (
	"errors"
	"fmt"
	"strings"

	"ppatc/internal/units"
)

// Interval power analysis: the paper's Step 4 derives *application-phase*
// power by replaying waveform activity against per-event energies. This
// module reconstructs a power-versus-time trace from a Trace()-produced
// dump: the cumulative access counters are differenced per sampling
// interval and weighted by per-access energies.

// AccessEnergies weights each memory-access type.
type AccessEnergies struct {
	// ProgramRead, DataRead and DataWrite are joules per access.
	ProgramRead, DataRead, DataWrite float64
	// BaselinePower covers leakage/refresh/clock (W).
	BaselinePower units.Power
}

// Validate checks the weights.
func (a AccessEnergies) Validate() error {
	if a.ProgramRead < 0 || a.DataRead < 0 || a.DataWrite < 0 || a.BaselinePower < 0 {
		return errors.New("power: access energies must be non-negative")
	}
	return nil
}

// IntervalPower is one sample of the reconstructed power trace.
type IntervalPower struct {
	// StartCycle and EndCycle bound the interval.
	StartCycle, EndCycle uint64
	// Power is the average power over the interval.
	Power units.Power
}

// PowerTrace reconstructs the power profile from a dump produced by Trace,
// at the given clock frequency.
func PowerTrace(d *Dump, e AccessEnergies, clk units.Frequency) ([]IntervalPower, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if clk <= 0 {
		return nil, errors.New("power: clock must be positive")
	}
	prog, err := d.Events("prog_reads")
	if err != nil {
		return nil, err
	}
	dr, err := d.Events("data_reads")
	if err != nil {
		return nil, err
	}
	dw, err := d.Events("data_writes")
	if err != nil {
		return nil, err
	}
	if len(prog) != len(dr) || len(prog) != len(dw) {
		return nil, errors.New("power: counter traces misaligned")
	}
	if len(prog) < 2 {
		return nil, errors.New("power: need at least two samples")
	}
	period := clk.PeriodSeconds()
	out := make([]IntervalPower, 0, len(prog)-1)
	for i := 1; i < len(prog); i++ {
		cycles := prog[i].Time - prog[i-1].Time
		if cycles == 0 {
			continue
		}
		energy := float64(prog[i].Value-prog[i-1].Value)*e.ProgramRead +
			float64(dr[i].Value-dr[i-1].Value)*e.DataRead +
			float64(dw[i].Value-dw[i-1].Value)*e.DataWrite
		span := float64(cycles) * period
		out = append(out, IntervalPower{
			StartCycle: prog[i-1].Time,
			EndCycle:   prog[i].Time,
			Power:      e.BaselinePower + units.Power(energy/span),
		})
	}
	if len(out) == 0 {
		return nil, errors.New("power: no nonzero intervals")
	}
	return out, nil
}

// MeanPower averages a power trace, weighting by interval length.
func MeanPower(trace []IntervalPower) (units.Power, error) {
	if len(trace) == 0 {
		return 0, errors.New("power: empty trace")
	}
	var energySum, cycleSum float64
	for _, iv := range trace {
		c := float64(iv.EndCycle - iv.StartCycle)
		energySum += iv.Power.Watts() * c
		cycleSum += c
	}
	return units.Watts(energySum / cycleSum), nil
}

// FormatPowerTrace renders the trace as a small text chart (one row per
// interval, bar length proportional to power).
func FormatPowerTrace(trace []IntervalPower, width int) (string, error) {
	if len(trace) == 0 {
		return "", errors.New("power: empty trace")
	}
	if width < 10 {
		width = 10
	}
	var peak float64
	for _, iv := range trace {
		if iv.Power.Watts() > peak {
			peak = iv.Power.Watts()
		}
	}
	var sb strings.Builder
	for _, iv := range trace {
		n := 0
		if peak > 0 {
			n = int(iv.Power.Watts() / peak * float64(width))
		}
		fmt.Fprintf(&sb, "%10d..%-10d %8.3f mW |%s\n",
			iv.StartCycle, iv.EndCycle, iv.Power.Milliwatts(), strings.Repeat("#", n))
	}
	return sb.String(), nil
}
