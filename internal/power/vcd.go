// Package power implements the activity-based power-analysis path of the
// paper's design flow (Sec. III-B, Step 4): RTL-style waveforms are
// captured in the IEEE 1364 value-change-dump (.vcd) format, and switching
// activity extracted from them converts to dynamic energy via CV². The
// package provides a VCD writer, a VCD parser, an activity analyzer, and a
// tracer that records a Cortex-M0 simulation (program counter and memory
// access strobes) as a VCD — the same artifact the paper extracts from
// Synopsys VCS.
package power

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SignalID identifies a declared signal within a Writer.
type SignalID int

// vcdIDChars generate short printable identifiers.
const vcdIDChars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"

type signal struct {
	name  string
	width int
	code  string
}

// Writer emits a VCD file incrementally.
type Writer struct {
	w       *bufio.Writer
	scope   string
	signals []signal
	started bool
	curTime uint64
	timeSet bool
}

// NewWriter wraps an io.Writer; the scope names the $scope module.
func NewWriter(w io.Writer, scope string) *Writer {
	return &Writer{w: bufio.NewWriter(w), scope: scope}
}

// Declare registers a signal before the header is written.
func (w *Writer) Declare(name string, width int) (SignalID, error) {
	if w.started {
		return 0, errors.New("power: declare before first Change")
	}
	if name == "" || width <= 0 || width > 64 {
		return 0, errors.New("power: signal needs a name and width 1-64")
	}
	id := len(w.signals)
	code := encodeID(id)
	w.signals = append(w.signals, signal{name: name, width: width, code: code})
	return SignalID(id), nil
}

// encodeID renders a compact VCD identifier.
func encodeID(id int) string {
	var sb strings.Builder
	for {
		sb.WriteByte(vcdIDChars[id%len(vcdIDChars)])
		id /= len(vcdIDChars)
		if id == 0 {
			break
		}
	}
	return sb.String()
}

// header writes the declaration section.
func (w *Writer) header() error {
	fmt.Fprintf(w.w, "$timescale 1ns $end\n")
	fmt.Fprintf(w.w, "$scope module %s $end\n", w.scope)
	for _, s := range w.signals {
		kind := "wire"
		fmt.Fprintf(w.w, "$var %s %d %s %s $end\n", kind, s.width, s.code, s.name)
	}
	fmt.Fprintf(w.w, "$upscope $end\n$enddefinitions $end\n")
	w.started = true
	return nil
}

// Change records a signal value at a time (nanosecond ticks). Times must
// be non-decreasing.
func (w *Writer) Change(t uint64, id SignalID, value uint64) error {
	if int(id) < 0 || int(id) >= len(w.signals) {
		return fmt.Errorf("power: unknown signal id %d", id)
	}
	if !w.started {
		if err := w.header(); err != nil {
			return err
		}
	}
	if w.timeSet && t < w.curTime {
		return fmt.Errorf("power: time went backwards (%d after %d)", t, w.curTime)
	}
	if !w.timeSet || t != w.curTime {
		fmt.Fprintf(w.w, "#%d\n", t)
		w.curTime = t
		w.timeSet = true
	}
	s := w.signals[id]
	if s.width == 1 {
		fmt.Fprintf(w.w, "%d%s\n", value&1, s.code)
	} else {
		fmt.Fprintf(w.w, "b%s %s\n", strconv.FormatUint(value, 2), s.code)
	}
	return nil
}

// Flush finishes the dump.
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.header(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Event is one value change of one signal.
type Event struct {
	Time  uint64
	Value uint64
}

// Dump is a parsed VCD.
type Dump struct {
	// Timescale is the declared timescale string ("1ns").
	Timescale string
	// signals maps name → event list (time-ordered).
	signals map[string][]Event
	widths  map[string]int
}

// Signals lists the signal names, sorted.
func (d *Dump) Signals() []string {
	out := make([]string, 0, len(d.signals))
	for n := range d.signals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Events returns a signal's value changes.
func (d *Dump) Events(name string) ([]Event, error) {
	ev, ok := d.signals[name]
	if !ok {
		return nil, fmt.Errorf("power: unknown signal %q", name)
	}
	return ev, nil
}

// Toggles counts value changes of a signal (excluding its initial value).
func (d *Dump) Toggles(name string) (int, error) {
	ev, err := d.Events(name)
	if err != nil {
		return 0, err
	}
	if len(ev) == 0 {
		return 0, nil
	}
	toggles := 0
	for i := 1; i < len(ev); i++ {
		if ev[i].Value != ev[i-1].Value {
			toggles++
		}
	}
	return toggles, nil
}

// ValueAt reports a signal's value at a time (last change at or before t).
func (d *Dump) ValueAt(name string, t uint64) (uint64, error) {
	ev, err := d.Events(name)
	if err != nil {
		return 0, err
	}
	var v uint64
	for _, e := range ev {
		if e.Time > t {
			break
		}
		v = e.Value
	}
	return v, nil
}

// Parse reads a VCD produced by Writer (a practical subset of IEEE 1364:
// $timescale/$scope/$var declarations, #time marks, scalar and binary
// vector changes).
func Parse(r io.Reader) (*Dump, error) {
	d := &Dump{signals: map[string][]Event{}, widths: map[string]int{}}
	codeToName := map[string]string{}
	sc := bufio.NewScanner(r)
	var now uint64
	inDefs := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$timescale"):
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				d.Timescale = fields[1]
			}
		case strings.HasPrefix(line, "$var"):
			// $var wire W code name $end
			fields := strings.Fields(line)
			if len(fields) < 6 {
				return nil, fmt.Errorf("power: malformed $var: %q", line)
			}
			width, err := strconv.Atoi(fields[2])
			if err != nil || width <= 0 {
				return nil, fmt.Errorf("power: bad width in %q", line)
			}
			code, name := fields[3], fields[4]
			codeToName[code] = name
			d.widths[name] = width
			d.signals[name] = nil
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		case strings.HasPrefix(line, "$"):
			// Other declaration keywords: ignore.
		case strings.HasPrefix(line, "#"):
			t, err := strconv.ParseUint(line[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("power: bad time %q", line)
			}
			now = t
		case strings.HasPrefix(line, "b") || strings.HasPrefix(line, "B"):
			if inDefs {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("power: malformed vector change %q", line)
			}
			v, err := strconv.ParseUint(fields[0][1:], 2, 64)
			if err != nil {
				return nil, fmt.Errorf("power: bad vector value %q", line)
			}
			name, ok := codeToName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("power: change for undeclared code %q", fields[1])
			}
			d.signals[name] = append(d.signals[name], Event{Time: now, Value: v})
		default:
			// Scalar change: 0code or 1code.
			if len(line) < 2 || (line[0] != '0' && line[0] != '1') {
				return nil, fmt.Errorf("power: unrecognized line %q", line)
			}
			name, ok := codeToName[line[1:]]
			if !ok {
				return nil, fmt.Errorf("power: change for undeclared code %q", line[1:])
			}
			v := uint64(line[0] - '0')
			d.signals[name] = append(d.signals[name], Event{Time: now, Value: v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
