package wafer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ppatc/internal/units"
)

func paperAllSiDie() Die {
	return Die{
		Width:   units.Micrometers(515),
		Height:  units.Micrometers(270),
		Spacing: units.Millimeters(0.1),
	}
}

func paperM3DDie() Die {
	return Die{
		Width:   units.Micrometers(334),
		Height:  units.Micrometers(159),
		Spacing: units.Millimeters(0.1),
	}
}

func TestSpecValidate(t *testing.T) {
	if err := Paper300mm().Validate(); err != nil {
		t.Fatalf("paper spec invalid: %v", err)
	}
	bad := []Spec{
		{},
		{Diameter: units.Millimeters(300), EdgeClearance: units.Millimeters(-1)},
		{Diameter: units.Millimeters(300), EdgeClearance: units.Millimeters(150)},
		{Diameter: units.Millimeters(300), FlatHeight: units.Millimeters(160)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestDieValidateAndAreas(t *testing.T) {
	d := paperAllSiDie()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Area().SquareMillimeters(); !almostEqual(got, 0.139, 0.01) {
		t.Errorf("all-Si die area = %v mm², want ≈0.139 (Table II)", got)
	}
	if got := paperM3DDie().Area().SquareMillimeters(); !almostEqual(got, 0.0531, 0.01) {
		t.Errorf("M3D die area = %v mm², want ≈0.053 (Table II)", got)
	}
	if got := d.CellArea().SquareMillimeters(); !almostEqual(got, 0.615*0.370, 1e-9) {
		t.Errorf("cell area = %v mm², want 0.2276", got)
	}
	for i, bad := range []Die{{}, {Width: 1, Height: -1}, {Width: 1, Height: 1, Spacing: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("die %d should be invalid", i)
		}
	}
}

func TestUsableGeometry(t *testing.T) {
	s := Paper300mm()
	if got := s.UsableRadius().Millimeters(); got != 145 {
		t.Errorf("usable radius = %v mm, want 145", got)
	}
	if got := s.Area().SquareCentimeters(); !almostEqual(got, 706.858, 1e-4) {
		t.Errorf("wafer area = %v cm², want 706.86", got)
	}
	ua, err := UsableArea(s)
	if err != nil {
		t.Fatal(err)
	}
	full := math.Pi * 145 * 145
	if mm2 := ua.SquareMillimeters(); mm2 >= full || mm2 < full*0.99 {
		t.Errorf("usable area = %v mm², want slightly below %v", mm2, full)
	}
}

// TestDieCountsNearPaper checks both estimators against Table II's die
// counts (299,127 all-Si; 606,238 M3D). Our estimators are independent
// implementations, so we accept a ±5% band — what must hold tightly is the
// *ratio* between the two designs, which drives every downstream carbon
// number.
func TestDieCountsNearPaper(t *testing.T) {
	s := Paper300mm()
	for _, tc := range []struct {
		name string
		est  func(Spec, Die) (int, error)
	}{
		{"formula", EstimateFormula},
		{"geometric", EstimateGeometric},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nAll, err := tc.est(s, paperAllSiDie())
			if err != nil {
				t.Fatal(err)
			}
			nM3D, err := tc.est(s, paperM3DDie())
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(float64(nAll), 299127, 0.05) {
				t.Errorf("all-Si dies = %d, want 299,127 ± 5%%", nAll)
			}
			if !almostEqual(float64(nM3D), 606238, 0.05) {
				t.Errorf("M3D dies = %d, want 606,238 ± 5%%", nM3D)
			}
			ratio := float64(nM3D) / float64(nAll)
			if !almostEqual(ratio, 606238.0/299127.0, 0.01) {
				t.Errorf("die count ratio = %.4f, want ≈2.027 ± 1%%", ratio)
			}
			t.Logf("%s: all-Si %d, M3D %d (ratio %.4f)", tc.name, nAll, nM3D, ratio)
		})
	}
}

func TestGeometricAtMostAreaBound(t *testing.T) {
	// The packed count can never exceed usable area / cell area.
	s := Paper300mm()
	for _, d := range []Die{paperAllSiDie(), paperM3DDie()} {
		n, err := EstimateGeometric(s, d)
		if err != nil {
			t.Fatal(err)
		}
		ua, _ := UsableArea(s)
		bound := int(ua.SquareMeters() / d.CellArea().SquareMeters())
		if n > bound {
			t.Errorf("geometric count %d exceeds area bound %d", n, bound)
		}
	}
}

func TestEstimatorErrors(t *testing.T) {
	s := Paper300mm()
	if _, err := EstimateFormula(Spec{}, paperAllSiDie()); err == nil {
		t.Error("invalid spec should fail")
	}
	if _, err := EstimateFormula(s, Die{}); err == nil {
		t.Error("invalid die should fail")
	}
	if _, err := EstimateGeometric(Spec{}, paperAllSiDie()); err == nil {
		t.Error("invalid spec should fail (geometric)")
	}
	if _, err := EstimateGeometric(s, Die{}); err == nil {
		t.Error("invalid die should fail (geometric)")
	}
	if _, err := UsableArea(Spec{}); err == nil {
		t.Error("invalid spec should fail (usable area)")
	}
}

func TestHugeDieYieldsZero(t *testing.T) {
	s := Paper300mm()
	huge := Die{Width: units.Millimeters(400), Height: units.Millimeters(400)}
	n, err := EstimateGeometric(s, huge)
	if err != nil || n != 0 {
		t.Errorf("die larger than wafer: n=%d err=%v, want 0, nil", n, err)
	}
	nf, err := EstimateFormula(s, huge)
	if err != nil || nf != 0 {
		t.Errorf("formula with huge die: n=%d err=%v, want 0, nil", nf, err)
	}
}

func TestFlatExclusionReducesCount(t *testing.T) {
	noFlat := Spec{Diameter: units.Millimeters(300), EdgeClearance: units.Millimeters(5)}
	withFlat := Paper300mm()
	d := paperAllSiDie()
	n0, err := EstimateGeometric(noFlat, d)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := EstimateGeometric(withFlat, d)
	if err != nil {
		t.Fatal(err)
	}
	if n1 >= n0 {
		t.Errorf("flat exclusion should reduce count: %d vs %d", n1, n0)
	}
}

// Property: die count is antitone in die size — a strictly larger die never
// packs more.
func TestCountAntitoneInDieSize(t *testing.T) {
	s := Paper300mm()
	f := func(wUM, hUM uint16, growPct uint8) bool {
		w := 100 + float64(wUM%2000)
		h := 100 + float64(hUM%2000)
		grow := 1 + float64(growPct%50)/100
		small := Die{Width: units.Micrometers(w), Height: units.Micrometers(h), Spacing: units.Millimeters(0.1)}
		big := Die{Width: units.Micrometers(w * grow), Height: units.Micrometers(h * grow), Spacing: units.Millimeters(0.1)}
		nSmall, err1 := EstimateGeometric(s, small)
		nBig, err2 := EstimateGeometric(s, big)
		if err1 != nil || err2 != nil {
			return false
		}
		return nBig <= nSmall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestRenderMap(t *testing.T) {
	// Use a large die so the map shows structure at low resolution.
	d := Die{Width: units.Millimeters(20), Height: units.Millimeters(20), Spacing: units.Millimeters(0.5)}
	m, err := RenderMap(Paper300mm(), d, 120)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#", ".", "o", "_"} {
		if !strings.Contains(m, want) {
			t.Errorf("map missing %q glyph", want)
		}
	}
	lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
	if len(lines) != 60 {
		t.Errorf("map has %d rows, want 60", len(lines))
	}
	if _, err := RenderMap(Paper300mm(), d, 5); err == nil {
		t.Error("tiny map should fail")
	}
	if _, err := RenderMap(Spec{}, d, 60); err == nil {
		t.Error("invalid spec should fail")
	}
}
