package wafer

import (
	"errors"
	"math"
	"strings"
)

// RenderMap draws an ASCII wafer map at the given character width: '#' for
// a placed die cell, '.' for usable area that cannot fit a whole die
// column, '_' for the flat exclusion, and blanks outside the wafer. Each
// character covers a square patch of the wafer; the map is a visual aid
// for the die-per-wafer estimate, not the estimate itself.
func RenderMap(s Spec, d Die, chars int) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	if err := d.Validate(); err != nil {
		return "", err
	}
	if chars < 10 || chars > 400 {
		return "", errors.New("wafer: map width must be 10-400 characters")
	}
	r := s.UsableRadius().Meters()
	rim := s.Diameter.Meters() / 2
	flatY := -(r - math.Max(0, s.FlatHeight.Meters()-s.EdgeClearance.Meters()))
	w := d.Width.Meters() + d.Spacing.Meters()
	h := d.Height.Meters() + d.Spacing.Meters()

	patch := 2 * rim / float64(chars)
	var sb strings.Builder
	// Terminal cells are ~2× taller than wide; halve the row count.
	rows := chars / 2
	for row := 0; row < rows; row++ {
		y := rim - (float64(row)+0.5)*2*rim/float64(rows)
		for col := 0; col < chars; col++ {
			x := -rim + (float64(col)+0.5)*patch
			rr := math.Hypot(x, y)
			switch {
			case rr > rim:
				sb.WriteByte(' ')
			case rr > r:
				sb.WriteByte('o') // edge-clearance ring
			case y < flatY:
				sb.WriteByte('_') // flat exclusion
			default:
				// Does the die cell containing this point fit whole?
				cx := math.Floor(x/w) * w
				cy := math.Floor(y/h) * h
				if cellInside(cx, cy, w, h, r, flatY) {
					sb.WriteByte('#')
				} else {
					sb.WriteByte('.')
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// cellInside reports whether the cell with lower-left corner (cx, cy) fits
// entirely inside the usable disc above the flat line.
func cellInside(cx, cy, w, h, r, flatY float64) bool {
	if cy < flatY {
		return false
	}
	for _, x := range []float64{cx, cx + w} {
		for _, y := range []float64{cy, cy + h} {
			if math.Hypot(x, y) > r {
				return false
			}
		}
	}
	return true
}
