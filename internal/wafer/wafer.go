// Package wafer implements die-per-wafer estimation (Step 5 of the paper's
// design flow). Two estimators are provided: the classic analytic formula
// used by die-per-wafer calculators, and a geometric row-packing count that
// places rectangular dies on the usable wafer region, honoring die spacing,
// edge clearance, and the flat/notch exclusion — the parameters the paper
// feeds its estimator (horizontal & vertical spacing 0.1 mm, edge clearance
// 5 mm, flat/notch height 10 mm).
package wafer

import (
	"errors"
	"math"

	"ppatc/internal/units"
)

// Spec describes the wafer and its exclusion zones.
type Spec struct {
	// Diameter is the wafer diameter (300 mm in the paper).
	Diameter units.Length
	// EdgeClearance is the unusable annulus at the wafer rim.
	EdgeClearance units.Length
	// FlatHeight is the height of the flat/notch exclusion segment at the
	// wafer edge.
	FlatHeight units.Length
}

// Paper300mm is the wafer specification of the paper's case study.
func Paper300mm() Spec {
	return Spec{
		Diameter:      units.Millimeters(300),
		EdgeClearance: units.Millimeters(5),
		FlatHeight:    units.Millimeters(10),
	}
}

// Validate checks the wafer spec.
func (s Spec) Validate() error {
	switch {
	case s.Diameter <= 0:
		return errors.New("wafer: diameter must be positive")
	case s.EdgeClearance < 0 || s.FlatHeight < 0:
		return errors.New("wafer: clearances must be non-negative")
	case 2*s.EdgeClearance >= s.Diameter:
		return errors.New("wafer: edge clearance consumes the whole wafer")
	case s.FlatHeight.Meters() >= s.Diameter.Meters()/2:
		return errors.New("wafer: flat height exceeds wafer radius")
	}
	return nil
}

// UsableRadius reports the radius of the region dies may occupy.
func (s Spec) UsableRadius() units.Length {
	return units.Length(s.Diameter.Meters()/2 - s.EdgeClearance.Meters())
}

// Area reports the full wafer area (used by the per-area carbon terms,
// which apply to the whole processed wafer).
func (s Spec) Area() units.Area {
	r := s.Diameter.Meters() / 2
	return units.SquareMeters(math.Pi * r * r)
}

// Die describes one die and its scribe-lane spacing.
type Die struct {
	// Width and Height are the die dimensions from place-and-route.
	Width, Height units.Length
	// Spacing is the horizontal and vertical scribe spacing between dies.
	Spacing units.Length
}

// Validate checks the die spec.
func (d Die) Validate() error {
	if d.Width <= 0 || d.Height <= 0 {
		return errors.New("wafer: die dimensions must be positive")
	}
	if d.Spacing < 0 {
		return errors.New("wafer: die spacing must be non-negative")
	}
	return nil
}

// Area reports the die's own area (without scribe).
func (d Die) Area() units.Area { return d.Width.TimesLength(d.Height) }

// CellArea reports the area one die consumes on the wafer including scribe.
func (d Die) CellArea() units.Area {
	return units.Area((d.Width.Meters() + d.Spacing.Meters()) * (d.Height.Meters() + d.Spacing.Meters()))
}

// EstimateFormula evaluates the classic die-per-wafer formula
//
//	DPW = π·d_eff²/(4·S) − π·d_eff/√(2·S)
//
// with d_eff the usable diameter (diameter − 2·edge clearance) and S the
// cell area including scribe. The second term approximates the partial dies
// lost along the circumference; the flat exclusion is subtracted as an area
// correction.
func EstimateFormula(s Spec, d Die) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	dEff := 2 * s.UsableRadius().Meters()
	cell := d.CellArea().SquareMeters()
	dpw := math.Pi*dEff*dEff/(4*cell) - math.Pi*dEff/math.Sqrt(2*cell)
	// Subtract the flat segment, clipped to the usable radius.
	dpw -= flatSegmentArea(s) / cell
	if dpw < 0 {
		dpw = 0
	}
	return int(dpw), nil
}

// flatSegmentArea reports the area of the flat/notch exclusion that overlaps
// the usable disc, in m².
func flatSegmentArea(s Spec) float64 {
	r := s.UsableRadius().Meters()
	// The flat removes a segment of height FlatHeight measured from the
	// physical wafer edge; the part overlapping the usable disc has height
	// h = FlatHeight − EdgeClearance.
	h := s.FlatHeight.Meters() - s.EdgeClearance.Meters()
	if h <= 0 {
		return 0
	}
	if h > r {
		h = r
	}
	// Circular segment of height h on a circle of radius r.
	return r*r*math.Acos((r-h)/r) - (r-h)*math.Sqrt(2*r*h-h*h)
}

// EstimateGeometric counts dies by packing the grid of (die+scribe) cells
// onto the usable disc, excluding the flat segment at the bottom. Four grid
// offsets (half-cell shifts in x and y) are tried and the best count is
// returned, mirroring how steppers optimize reticle placement.
func EstimateGeometric(s Spec, d Die) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	r := s.UsableRadius().Meters()
	w := d.Width.Meters() + d.Spacing.Meters()
	h := d.Height.Meters() + d.Spacing.Meters()
	// Flat exclusion: rows must satisfy yMin ≥ flatY.
	flatY := -(r - math.Max(0, s.FlatHeight.Meters()-s.EdgeClearance.Meters()))

	best := 0
	for _, ox := range []float64{0, 0.5} {
		for _, oy := range []float64{0, 0.5} {
			if n := packCount(r, w, h, ox, oy, flatY); n > best {
				best = n
			}
		}
	}
	return best, nil
}

// packCount counts grid cells fully inside the disc of radius r and above
// the flat line, with the grid shifted by (ox·w, oy·h) from center.
func packCount(r, w, h, ox, oy, flatY float64) int {
	count := 0
	// Row j spans y ∈ [ (j+oy)·h, (j+oy+1)·h ).
	jMin := int(math.Floor((-r)/h)) - 2
	jMax := int(math.Ceil(r/h)) + 2
	for j := jMin; j <= jMax; j++ {
		y0 := (float64(j) + oy) * h
		y1 := y0 + h
		if y0 < flatY {
			continue
		}
		yAbs := math.Max(math.Abs(y0), math.Abs(y1))
		if yAbs >= r {
			continue
		}
		// Maximum |x| so that both cell corners stay inside the circle.
		xMax := math.Sqrt(r*r - yAbs*yAbs)
		// Columns i span x ∈ [ (i+ox)·w, (i+ox+1)·w ); count those fully
		// within [−xMax, xMax].
		iLo := int(math.Ceil(-xMax/w - ox))
		iHi := int(math.Floor(xMax/w-ox)) - 1
		if iHi >= iLo {
			count += iHi - iLo + 1
		}
	}
	return count
}

// UsableArea reports the wafer area available to dies: the usable disc
// minus the flat exclusion.
func UsableArea(s Spec) (units.Area, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	r := s.UsableRadius().Meters()
	return units.SquareMeters(math.Pi*r*r - flatSegmentArea(s)), nil
}
