package yield

import (
	"math"
	"testing"
	"testing/quick"

	"ppatc/internal/units"
)

var testDie = units.SquareMillimeters(0.139)

func TestFixed(t *testing.T) {
	y, err := PaperAllSi.Yield(testDie)
	if err != nil || y != 0.90 {
		t.Errorf("paper all-Si yield = %v, %v; want 0.90", y, err)
	}
	y, err = PaperM3D.Yield(testDie)
	if err != nil || y != 0.50 {
		t.Errorf("paper M3D yield = %v, %v; want 0.50", y, err)
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := (Fixed{Value: bad}).Yield(testDie); err == nil {
			t.Errorf("fixed yield %v should be invalid", bad)
		}
	}
}

func TestPoisson(t *testing.T) {
	// Y = exp(-D0·A): with D0 = 0.1/cm² and A = 1 cm², Y = e^-0.1.
	p := Poisson{D0: 0.1}
	y, err := p.Yield(units.SquareCentimeters(1))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(y, math.Exp(-0.1), 1e-12) {
		t.Errorf("poisson yield = %v, want %v", y, math.Exp(-0.1))
	}
	if _, err := (Poisson{D0: -1}).Yield(testDie); err == nil {
		t.Error("negative D0 should fail")
	}
	if _, err := p.Yield(0); err == nil {
		t.Error("zero area should fail")
	}
}

func TestMurphyBetweenPoissonAndOne(t *testing.T) {
	d0 := 0.5
	a := units.SquareCentimeters(1)
	pois, _ := Poisson{D0: d0}.Yield(a)
	mur, _ := Murphy{D0: d0}.Yield(a)
	if !(mur > pois && mur < 1) {
		t.Errorf("murphy %v must lie between poisson %v and 1", mur, pois)
	}
	y, err := Murphy{D0: 0}.Yield(a)
	if err != nil || y != 1 {
		t.Errorf("murphy with D0=0 = %v, %v; want 1", y, err)
	}
}

func TestNegativeBinomialLimits(t *testing.T) {
	a := units.SquareCentimeters(1)
	// α → ∞ approaches Poisson.
	nb, _ := NegativeBinomial{D0: 0.3, Alpha: 1e6}.Yield(a)
	pois, _ := Poisson{D0: 0.3}.Yield(a)
	if !almostEqual(nb, pois, 1e-4) {
		t.Errorf("NB with huge α = %v, want ≈ poisson %v", nb, pois)
	}
	// Clustering (small α) raises yield above Poisson.
	nb2, _ := NegativeBinomial{D0: 0.3, Alpha: 2}.Yield(a)
	if nb2 <= pois {
		t.Errorf("clustered NB %v should exceed poisson %v", nb2, pois)
	}
	if _, err := (NegativeBinomial{D0: 0.3, Alpha: 0}).Yield(a); err == nil {
		t.Error("zero alpha should fail")
	}
}

func TestCompoundTiers(t *testing.T) {
	// Three identical tiers at fixed 80% compound to 0.512.
	c := Compound{Tiers: []Model{Fixed{0.8}, Fixed{0.8}, Fixed{0.8}}}
	y, err := c.Yield(testDie)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(y, 0.512, 1e-12) {
		t.Errorf("compound yield = %v, want 0.512", y)
	}
	if _, err := (Compound{}).Yield(testDie); err == nil {
		t.Error("empty compound should fail")
	}
	// Errors propagate from tiers.
	bad := Compound{Tiers: []Model{Fixed{0.8}, Fixed{0}}}
	if _, err := bad.Yield(testDie); err == nil {
		t.Error("bad tier should fail")
	}
}

func TestGoodDies(t *testing.T) {
	n, err := GoodDies(299127, testDie, PaperAllSi)
	if err != nil {
		t.Fatal(err)
	}
	if n != 269214 {
		t.Errorf("good all-Si dies = %d, want 269,214", n)
	}
	n, err = GoodDies(606238, units.SquareMillimeters(0.053), PaperM3D)
	if err != nil {
		t.Fatal(err)
	}
	if n != 303119 {
		t.Errorf("good M3D dies = %d, want 303,119", n)
	}
	if _, err := GoodDies(-1, testDie, PaperAllSi); err == nil {
		t.Error("negative die count should fail")
	}
}

func TestNames(t *testing.T) {
	models := []Model{
		Fixed{0.9}, Poisson{0.1}, Murphy{0.1},
		NegativeBinomial{0.1, 2}, Compound{Tiers: []Model{Fixed{0.9}}},
	}
	seen := map[string]bool{}
	for _, m := range models {
		n := m.Name()
		if n == "" || seen[n] {
			t.Errorf("model name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}

// Property: every model's yield is within (0, 1] and antitone in area.
func TestYieldBoundsAndMonotonicity(t *testing.T) {
	models := []Model{
		Poisson{D0: 0.2}, Murphy{D0: 0.2}, NegativeBinomial{D0: 0.2, Alpha: 2.5},
		Compound{Tiers: []Model{Poisson{D0: 0.1}, Poisson{D0: 0.1}}},
	}
	f := func(aMM2, bMM2 uint16) bool {
		a := units.SquareMillimeters(float64(aMM2%5000) + 0.01)
		b := units.SquareMillimeters(float64(bMM2%5000) + 0.01)
		if a > b {
			a, b = b, a
		}
		for _, m := range models {
			ya, err1 := m.Yield(a)
			yb, err2 := m.Yield(b)
			if err1 != nil || err2 != nil {
				return false
			}
			if ya <= 0 || ya > 1 || yb <= 0 || yb > 1 {
				return false
			}
			if yb > ya+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
