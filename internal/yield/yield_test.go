package yield

import (
	"math"
	"testing"
	"testing/quick"

	"ppatc/internal/units"
)

var testDie = units.SquareMillimeters(0.139)

func TestFixed(t *testing.T) {
	y, err := PaperAllSi.Yield(testDie)
	if err != nil || y != 0.90 {
		t.Errorf("paper all-Si yield = %v, %v; want 0.90", y, err)
	}
	y, err = PaperM3D.Yield(testDie)
	if err != nil || y != 0.50 {
		t.Errorf("paper M3D yield = %v, %v; want 0.50", y, err)
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := (Fixed{Value: bad}).Yield(testDie); err == nil {
			t.Errorf("fixed yield %v should be invalid", bad)
		}
	}
}

func TestPoisson(t *testing.T) {
	// Y = exp(-D0·A): with D0 = 0.1/cm² and A = 1 cm², Y = e^-0.1.
	p := Poisson{D0: 0.1}
	y, err := p.Yield(units.SquareCentimeters(1))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(y, math.Exp(-0.1), 1e-12) {
		t.Errorf("poisson yield = %v, want %v", y, math.Exp(-0.1))
	}
	if _, err := (Poisson{D0: -1}).Yield(testDie); err == nil {
		t.Error("negative D0 should fail")
	}
	if _, err := p.Yield(0); err == nil {
		t.Error("zero area should fail")
	}
}

func TestMurphyBetweenPoissonAndOne(t *testing.T) {
	d0 := 0.5
	a := units.SquareCentimeters(1)
	pois, _ := Poisson{D0: d0}.Yield(a)
	mur, _ := Murphy{D0: d0}.Yield(a)
	if !(mur > pois && mur < 1) {
		t.Errorf("murphy %v must lie between poisson %v and 1", mur, pois)
	}
	y, err := Murphy{D0: 0}.Yield(a)
	if err != nil || y != 1 {
		t.Errorf("murphy with D0=0 = %v, %v; want 1", y, err)
	}
}

func TestNegativeBinomialLimits(t *testing.T) {
	a := units.SquareCentimeters(1)
	// α → ∞ approaches Poisson.
	nb, _ := NegativeBinomial{D0: 0.3, Alpha: 1e6}.Yield(a)
	pois, _ := Poisson{D0: 0.3}.Yield(a)
	if !almostEqual(nb, pois, 1e-4) {
		t.Errorf("NB with huge α = %v, want ≈ poisson %v", nb, pois)
	}
	// Clustering (small α) raises yield above Poisson.
	nb2, _ := NegativeBinomial{D0: 0.3, Alpha: 2}.Yield(a)
	if nb2 <= pois {
		t.Errorf("clustered NB %v should exceed poisson %v", nb2, pois)
	}
	if _, err := (NegativeBinomial{D0: 0.3, Alpha: 0}).Yield(a); err == nil {
		t.Error("zero alpha should fail")
	}
}

func TestCompoundTiers(t *testing.T) {
	// Three identical tiers at fixed 80% compound to 0.512.
	c := Compound{Tiers: []Model{Fixed{0.8}, Fixed{0.8}, Fixed{0.8}}}
	y, err := c.Yield(testDie)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(y, 0.512, 1e-12) {
		t.Errorf("compound yield = %v, want 0.512", y)
	}
	if _, err := (Compound{}).Yield(testDie); err == nil {
		t.Error("empty compound should fail")
	}
	// Errors propagate from tiers.
	bad := Compound{Tiers: []Model{Fixed{0.8}, Fixed{0}}}
	if _, err := bad.Yield(testDie); err == nil {
		t.Error("bad tier should fail")
	}
}

func TestGoodDies(t *testing.T) {
	n, err := GoodDies(299127, testDie, PaperAllSi)
	if err != nil {
		t.Fatal(err)
	}
	if n != 269214 {
		t.Errorf("good all-Si dies = %d, want 269,214", n)
	}
	n, err = GoodDies(606238, units.SquareMillimeters(0.053), PaperM3D)
	if err != nil {
		t.Fatal(err)
	}
	if n != 303119 {
		t.Errorf("good M3D dies = %d, want 303,119", n)
	}
	if _, err := GoodDies(-1, testDie, PaperAllSi); err == nil {
		t.Error("negative die count should fail")
	}
}

// TestGoodDiesTruncation pins the epsilon floor: N·Y products that land a
// couple of ulps below an integer (binary rounding of a non-dyadic yield)
// must be credited to that integer, not truncated one die short. Every
// case here failed with the bare int(float64(n) * y) conversion.
func TestGoodDiesTruncation(t *testing.T) {
	cm2 := units.SquareCentimeters(1)
	cases := []struct {
		name string
		m    Model
		die  units.Area
		n    int
		want int
	}{
		// 100 × 0.29 = 28.999999999999996 → truncates to 28.
		{"fixed 0.29", Fixed{Value: 0.29}, testDie, 100, 29},
		{"fixed 0.29 scaled", Fixed{Value: 0.29}, testDie, 800, 232},
		// Poisson with D0·A = -ln(0.7): Y is one ulp under 0.7,
		// 10 × Y = 6.999999999999998 → truncates to 6.
		{"poisson Y≈0.7", Poisson{D0: 0.35667494393873245}, cm2, 10, 7},
		// Poisson with D0·A = -ln(0.58): 50 × Y = 28.999999999999996.
		{"poisson Y≈0.58", Poisson{D0: 0.54472717544167204}, cm2, 50, 29},
		// Murphy with x solving ((1-e^-x)/x)² = 0.7: 10 × Y just under 7.
		{"murphy Y≈0.7", Murphy{D0: 0.36794415128135116}, cm2, 10, 7},
		// Murphy, Y ≈ 0.617: 1000 × Y = 616.9999999999999.
		{"murphy Y≈0.617", Murphy{D0: 0.50401050519810719}, cm2, 1000, 617},
		// Negative binomial with D0·A = 2(0.29^-½ − 1), α = 2: Y ≈ 0.29,
		// 100 × Y = 28.999999999999993.
		{"negbinomial Y≈0.29", NegativeBinomial{D0: 1.7139067635410377, Alpha: 2}, cm2, 100, 29},
		// Negative binomial, Y ≈ 0.87: 100 × Y just under 87.
		{"negbinomial Y≈0.87", NegativeBinomial{D0: 0.14422506967558979, Alpha: 2}, cm2, 100, 87},
	}
	for _, c := range cases {
		got, err := GoodDies(c.n, c.die, c.m)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: GoodDies(%d) = %d, want %d", c.name, c.n, got, c.want)
		}
	}
	// The epsilon must only rescue near-integer products, never round a
	// clearly fractional one up.
	got, err := GoodDies(100, testDie, Fixed{Value: 0.299})
	if err != nil || got != 29 {
		t.Errorf("GoodDies(100, Y=0.299) = %d, %v; want 29 (floor of 29.9)", got, err)
	}
	got, err = GoodDies(3, testDie, Fixed{Value: 0.5})
	if err != nil || got != 1 {
		t.Errorf("GoodDies(3, Y=0.5) = %d, %v; want 1 (floor of 1.5)", got, err)
	}
}

func TestNames(t *testing.T) {
	models := []Model{
		Fixed{0.9}, Poisson{0.1}, Murphy{0.1},
		NegativeBinomial{0.1, 2}, Compound{Tiers: []Model{Fixed{0.9}}},
	}
	seen := map[string]bool{}
	for _, m := range models {
		n := m.Name()
		if n == "" || seen[n] {
			t.Errorf("model name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}

// Property: every model's yield is within (0, 1] and antitone in area.
func TestYieldBoundsAndMonotonicity(t *testing.T) {
	models := []Model{
		Poisson{D0: 0.2}, Murphy{D0: 0.2}, NegativeBinomial{D0: 0.2, Alpha: 2.5},
		Compound{Tiers: []Model{Poisson{D0: 0.1}, Poisson{D0: 0.1}}},
	}
	f := func(aMM2, bMM2 uint16) bool {
		a := units.SquareMillimeters(float64(aMM2%5000) + 0.01)
		b := units.SquareMillimeters(float64(bMM2%5000) + 0.01)
		if a > b {
			a, b = b, a
		}
		for _, m := range models {
			ya, err1 := m.Yield(a)
			yb, err2 := m.Yield(b)
			if err1 != nil || err2 != nil {
				return false
			}
			if ya <= 0 || ya > 1 || yb <= 0 || yb > 1 {
				return false
			}
			if yb > ya+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
