// Package yield provides die-yield models for the good-die amortization of
// Eq. 5. The paper demonstrates its case study with fixed yields (90% for
// the mature all-Si eDRAM process, 50% for the M3D process) and notes that
// "designers can choose arbitrary yield models (e.g., depending on
// technology node, process, and design robustness)" — this package supplies
// the standard ones: fixed, Poisson, Murphy, negative binomial, and a
// compound per-tier model for monolithic-3D stacks where every sequential
// device tier must yield.
package yield

import (
	"errors"
	"fmt"
	"math"

	"ppatc/internal/units"
)

// Model maps a die area to a probability that the die is functional.
type Model interface {
	// Yield reports the expected fraction of good dies of the given area.
	// Results are in (0, 1].
	Yield(die units.Area) (float64, error)
	// Name identifies the model for reports.
	Name() string
}

// Fixed is an area-independent yield, the paper's demonstration choice.
type Fixed struct {
	// Value is the yield fraction in (0, 1].
	Value float64
}

// Name implements Model.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%.0f%%)", f.Value*100) }

// Yield implements Model.
func (f Fixed) Yield(units.Area) (float64, error) {
	if f.Value <= 0 || f.Value > 1 {
		return 0, fmt.Errorf("yield: fixed yield %g outside (0, 1]", f.Value)
	}
	return f.Value, nil
}

// Poisson is the Poisson defect-density model: Y = exp(−D0·A).
type Poisson struct {
	// D0 is the defect density in defects per cm².
	D0 float64
}

// Name implements Model.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(D0=%.2g/cm²)", p.D0) }

// Yield implements Model.
func (p Poisson) Yield(die units.Area) (float64, error) {
	if p.D0 < 0 {
		return 0, errors.New("yield: defect density must be non-negative")
	}
	if die <= 0 {
		return 0, errors.New("yield: die area must be positive")
	}
	return math.Exp(-p.D0 * die.SquareCentimeters()), nil
}

// Murphy is Murphy's yield model, Y = ((1 − e^{−D0·A}) / (D0·A))², which
// assumes a triangular defect-density distribution and sits between the
// pessimistic Poisson and optimistic Seeds models.
type Murphy struct {
	// D0 is the defect density in defects per cm².
	D0 float64
}

// Name implements Model.
func (m Murphy) Name() string { return fmt.Sprintf("murphy(D0=%.2g/cm²)", m.D0) }

// Yield implements Model.
func (m Murphy) Yield(die units.Area) (float64, error) {
	if m.D0 < 0 {
		return 0, errors.New("yield: defect density must be non-negative")
	}
	if die <= 0 {
		return 0, errors.New("yield: die area must be positive")
	}
	x := m.D0 * die.SquareCentimeters()
	if x == 0 {
		return 1, nil
	}
	f := (1 - math.Exp(-x)) / x
	return f * f, nil
}

// NegativeBinomial is the negative-binomial (clustered-defect) model,
// Y = (1 + D0·A/α)^{−α}, the industry standard for modern nodes.
type NegativeBinomial struct {
	// D0 is the defect density in defects per cm².
	D0 float64
	// Alpha is the clustering parameter (α → ∞ recovers Poisson; α ≈ 2-3
	// is typical).
	Alpha float64
}

// Name implements Model.
func (n NegativeBinomial) Name() string {
	return fmt.Sprintf("negbinomial(D0=%.2g/cm², α=%.2g)", n.D0, n.Alpha)
}

// Yield implements Model.
func (n NegativeBinomial) Yield(die units.Area) (float64, error) {
	if n.D0 < 0 {
		return 0, errors.New("yield: defect density must be non-negative")
	}
	if n.Alpha <= 0 {
		return 0, errors.New("yield: clustering parameter must be positive")
	}
	if die <= 0 {
		return 0, errors.New("yield: die area must be positive")
	}
	return math.Pow(1+n.D0*die.SquareCentimeters()/n.Alpha, -n.Alpha), nil
}

// Compound multiplies per-tier yields, modeling a monolithic-3D stack in
// which every sequentially fabricated tier must be functional for the die
// to be good. This captures the paper's observation that the M3D process's
// relative immaturity and complexity depress its yield.
type Compound struct {
	// Tiers are the per-tier models, one per device tier in the stack.
	Tiers []Model
}

// Name implements Model.
func (c Compound) Name() string { return fmt.Sprintf("compound(%d tiers)", len(c.Tiers)) }

// Yield implements Model.
func (c Compound) Yield(die units.Area) (float64, error) {
	if len(c.Tiers) == 0 {
		return 0, errors.New("yield: compound model needs at least one tier")
	}
	y := 1.0
	for _, t := range c.Tiers {
		ty, err := t.Yield(die)
		if err != nil {
			return 0, err
		}
		y *= ty
	}
	return y, nil
}

// Paper yields for the case study (Sec. III-B, Step 5).
var (
	// PaperAllSi is the 90% yield the paper assumes for the mature all-Si
	// eDRAM process.
	PaperAllSi = Fixed{Value: 0.90}
	// PaperM3D is the 50% yield the paper assumes for the M3D process.
	PaperM3D = Fixed{Value: 0.50}
)

// GoodDies applies a model to a die count: floor(N · Y).
//
// The floor carries an epsilon of a few ulps: N·Y is a rounded binary
// product of a rounded binary yield (itself often the output of exp/pow),
// so a mathematically integral count can land a couple of ulps below the
// integer (100 × 0.29 = 28.999999999999996) and a bare int() truncation
// under-counts the good dies. Products within the accumulated rounding
// error below an integer are credited to it.
func GoodDies(n int, die units.Area, m Model) (int, error) {
	if n < 0 {
		return 0, errors.New("yield: die count must be non-negative")
	}
	y, err := m.Yield(die)
	if err != nil {
		return 0, err
	}
	p := float64(n) * y
	if p <= 0 {
		return 0, nil
	}
	// 4 ulps cover the worst case: half an ulp each from representing Y,
	// from the model's exp/pow evaluation, and from the product rounding,
	// amplified once by the multiply.
	eps := 4 * (math.Nextafter(p, math.Inf(1)) - p)
	return int(math.Floor(p + eps)), nil
}
