// Package act implements an ACT-style architectural embodied-carbon
// baseline (paper reference [6]: Gupta et al., "ACT: Designing Sustainable
// Computer Systems with an Architectural Carbon Modeling Tool", ISCA 2022).
//
// ACT prices logic dies top-down: a carbon-per-area (CPA) figure indexed
// by technology node and fab energy mix, plus per-package and per-die
// assembly terms. This is the model the paper positions itself against:
// ACT's node table covers silicon CMOS only, so a monolithic-3D
// IGZO/CNFET/Si process has no entry — the gap the paper's bottom-up
// per-step model (internal/process) fills. The package exists so the
// repository can quantify that gap: the comparison bench prices the
// all-Si die both ways (they agree) and shows the M3D die is simply
// un-priceable under ACT without the paper's contribution.
package act

import (
	"errors"
	"fmt"
	"sort"

	"ppatc/internal/units"
)

// Node identifies a silicon technology node in ACT's table.
type Node int

// Supported silicon nodes (nm).
const (
	Node28 Node = 28
	Node20 Node = 20
	Node14 Node = 14
	Node10 Node = 10
	Node7  Node = 7
	Node5  Node = 5
)

// Nodes returns the table's nodes in descending feature size.
func Nodes() []Node { return []Node{Node28, Node20, Node14, Node10, Node7, Node5} }

// cpaRow is the per-node carbon intensity of processed silicon area,
// split the way ACT does: a fab-energy component (scaled by the grid) and
// a fixed component (gases + materials).
type cpaRow struct {
	// energyKWhPerCm2 is fab electricity per die area.
	energyKWhPerCm2 float64
	// fixedGramsPerCm2 is the grid-independent part (GPA + MPA).
	fixedGramsPerCm2 float64
}

// cpaTable holds the per-node coefficients. The 7 nm row is aligned with
// this repository's bottom-up all-Si flow (see TestACTMatchesBottomUpAllSi)
// so the two models agree where they overlap; other nodes follow ACT's
// published trend of CPA rising steeply below 14 nm as EUV and
// multi-patterning multiply the energy per area.
var cpaTable = map[Node]cpaRow{
	Node28: {energyKWhPerCm2: 0.55, fixedGramsPerCm2: 480},
	Node20: {energyKWhPerCm2: 0.70, fixedGramsPerCm2: 510},
	Node14: {energyKWhPerCm2: 0.90, fixedGramsPerCm2: 550},
	Node10: {energyKWhPerCm2: 1.15, fixedGramsPerCm2: 600},
	Node7:  {energyKWhPerCm2: 1.40, fixedGramsPerCm2: 658},
	Node5:  {energyKWhPerCm2: 1.90, fixedGramsPerCm2: 720},
}

// PackagingCarbon is ACT's per-package assembly and substrate charge.
var PackagingCarbon = units.GramsCO2e(150)

// Inputs parameterizes an ACT evaluation.
type Inputs struct {
	// Node is the silicon node.
	Node Node
	// DieArea is the logic die area.
	DieArea units.Area
	// Grid is the fab electricity intensity.
	Grid units.CarbonIntensity
	// Yield is the die yield in (0, 1].
	Yield float64
	// IncludePackaging adds the per-package charge.
	IncludePackaging bool
}

// Validate checks the inputs.
func (in Inputs) Validate() error {
	if _, ok := cpaTable[in.Node]; !ok {
		return fmt.Errorf("act: no CPA entry for node %d nm — ACT's table covers silicon CMOS nodes only", int(in.Node))
	}
	switch {
	case in.DieArea <= 0:
		return errors.New("act: die area must be positive")
	case in.Grid < 0:
		return errors.New("act: grid intensity must be non-negative")
	case in.Yield <= 0 || in.Yield > 1:
		return errors.New("act: yield must be in (0, 1]")
	}
	return nil
}

// CPA reports the node's carbon per processed area on a grid.
func CPA(node Node, grid units.CarbonIntensity) (units.CarbonPerArea, error) {
	row, ok := cpaTable[node]
	if !ok {
		return 0, fmt.Errorf("act: no CPA entry for node %d nm", int(node))
	}
	energyCarbon := grid.Apply(units.KilowattHours(row.energyKWhPerCm2)).Grams()
	return units.GramsPerSquareCentimeter(row.fixedGramsPerCm2 + energyCarbon), nil
}

// EmbodiedPerGoodDie evaluates ACT's model: CPA·area/yield (+ packaging).
func EmbodiedPerGoodDie(in Inputs) (units.Carbon, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	cpa, err := CPA(in.Node, in.Grid)
	if err != nil {
		return 0, err
	}
	c := units.Carbon(cpa.Over(in.DieArea).Grams() / in.Yield)
	if in.IncludePackaging {
		c += PackagingCarbon
	}
	return c, nil
}

// SupportsProcess reports whether ACT can price a process, by name. The
// heuristic mirrors reality: anything beyond planar/finFET silicon CMOS
// (M3D stacks, BEOL device tiers, beyond-Si channels) has no table entry.
func SupportsProcess(name string) bool {
	for _, kw := range []string{"M3D", "CNFET", "CNT", "IGZO", "RRAM", "2D"} {
		if containsFold(name, kw) {
			return false
		}
	}
	return true
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if a >= 'a' && a <= 'z' {
				a -= 'a' - 'A'
			}
			if b >= 'a' && b <= 'z' {
				b -= 'a' - 'A'
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// FormatTable renders the CPA table on a grid.
func FormatTable(grid units.CarbonIntensity) (string, error) {
	nodes := Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] > nodes[j] })
	out := fmt.Sprintf("%6s %18s\n", "node", "CPA (gCO2e/cm²)")
	for _, n := range nodes {
		cpa, err := CPA(n, grid)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("%4dnm %18.0f\n", int(n), cpa.GramsPerSquareCentimeter())
	}
	return out, nil
}
