package act

import (
	"math"
	"strings"
	"testing"

	"ppatc/internal/carbon"
	"ppatc/internal/process"
	"ppatc/internal/units"
)

func TestCPATrendAcrossNodes(t *testing.T) {
	grid := carbon.GridUS.Intensity
	var prev float64
	for i, n := range Nodes() {
		cpa, err := CPA(n, grid)
		if err != nil {
			t.Fatal(err)
		}
		g := cpa.GramsPerSquareCentimeter()
		if i > 0 && g <= prev {
			t.Errorf("CPA must rise as nodes shrink: %dnm %.0f after %.0f", int(n), g, prev)
		}
		prev = g
	}
	if _, err := CPA(Node(3), grid); err == nil {
		t.Error("3 nm has no entry and must fail")
	}
}

// TestACTMatchesBottomUpAllSi aligns the two models where they overlap:
// ACT's 7 nm CPA must price the all-Si wafer within 2% of the bottom-up
// per-step model (which is calibrated to the paper).
func TestACTMatchesBottomUpAllSi(t *testing.T) {
	grid := carbon.GridUS
	cpa, err := CPA(Node7, grid.Intensity)
	if err != nil {
		t.Fatal(err)
	}
	wafer := units.SquareCentimeters(706.858)
	actWafer := cpa.Over(wafer).Kilograms()

	epa, err := process.AllSi7nm().EPA(process.DefaultEnergyTable())
	if err != nil {
		t.Fatal(err)
	}
	gpa, err := carbon.GPAScaled(epa, process.IN7Reference(), process.IN7GPA())
	if err != nil {
		t.Fatal(err)
	}
	b, err := carbon.EmbodiedPerWafer(carbon.EmbodiedInputs{
		MPA: process.SiWaferMPA(), GPA: gpa, EPA: epa,
		CIFab: grid.Intensity, WaferArea: wafer,
	})
	if err != nil {
		t.Fatal(err)
	}
	bottomUp := b.Total().Kilograms()
	if math.Abs(actWafer-bottomUp)/bottomUp > 0.02 {
		t.Errorf("ACT 7nm wafer = %.0f kg, bottom-up = %.0f kg (want ≤2%% apart)", actWafer, bottomUp)
	}
}

func TestACTCannotPriceM3D(t *testing.T) {
	// The paper's gap: ACT has no entry for the M3D process.
	if SupportsProcess(process.M3D7nm().Name) {
		t.Error("ACT must not claim to support the M3D IGZO/CNFET/Si process")
	}
	if !SupportsProcess(process.AllSi7nm().Name) {
		t.Error("ACT supports plain silicon flows")
	}
	for _, name := range []string{"RRAM crossbar", "2D-material FET", "cnt logic"} {
		if SupportsProcess(name) {
			t.Errorf("ACT should not support %q", name)
		}
	}
}

func TestEmbodiedPerGoodDie(t *testing.T) {
	in := Inputs{
		Node:    Node7,
		DieArea: units.SquareMillimeters(0.139),
		Grid:    carbon.GridUS.Intensity,
		Yield:   0.90,
	}
	c, err := EmbodiedPerGoodDie(in)
	if err != nil {
		t.Fatal(err)
	}
	// ACT per-area pricing of the all-Si die: CPA ≈ 1190 g/cm² ×
	// 0.00139 cm² / 0.9 ≈ 1.8 g — below the paper's 3.11 g because ACT
	// has no scribe/edge/flat amortization (it prices net die area, not
	// wafer area over good dies). Both views are standard; the gap is the
	// wafer-level overhead.
	if c.Grams() < 1.0 || c.Grams() > 3.5 {
		t.Errorf("ACT per good die = %.2f g, want 1-3.5", c.Grams())
	}
	in.IncludePackaging = true
	withPkg, err := EmbodiedPerGoodDie(in)
	if err != nil {
		t.Fatal(err)
	}
	if withPkg-c != PackagingCarbon {
		t.Error("packaging charge not applied")
	}
}

func TestInputValidation(t *testing.T) {
	base := Inputs{Node: Node7, DieArea: units.SquareMillimeters(1), Grid: carbon.GridUS.Intensity, Yield: 0.9}
	bad := []func(*Inputs){
		func(i *Inputs) { i.Node = Node(6) },
		func(i *Inputs) { i.DieArea = 0 },
		func(i *Inputs) { i.Grid = -1 },
		func(i *Inputs) { i.Yield = 0 },
		func(i *Inputs) { i.Yield = 1.1 },
	}
	for k, mutate := range bad {
		in := base
		mutate(&in)
		if _, err := EmbodiedPerGoodDie(in); err == nil {
			t.Errorf("case %d should fail", k)
		}
	}
}

func TestFormatTable(t *testing.T) {
	out, err := FormatTable(carbon.GridUS.Intensity)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"28nm", "7nm", "5nm", "CPA"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
