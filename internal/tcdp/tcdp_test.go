package tcdp

import (
	"math"
	"testing"
	"testing/quick"

	"ppatc/internal/carbon"
	"ppatc/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// The design points below are the outputs of the core package's headline
// evaluation (checked against Table II in internal/core); duplicating the
// numbers keeps this package's tests independent of the slow pipeline.
func siPoint() DesignPoint {
	return DesignPoint{
		Name:     "all-Si",
		Embodied: units.GramsCO2e(3.26),
		Power:    units.Milliwatts(9.714),
		ExecTime: 20047423 * 2e-9,
		Yield:    0.90,
	}
}

func m3dPoint() DesignPoint {
	return DesignPoint{
		Name:     "M3D",
		Embodied: units.GramsCO2e(3.80),
		Power:    units.Milliwatts(8.443),
		ExecTime: 20047423 * 2e-9,
		Yield:    0.50,
	}
}

func TestValidate(t *testing.T) {
	if err := siPoint().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := siPoint()
	bad.Embodied = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero embodied should fail")
	}
	bad = siPoint()
	bad.Yield = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("yield > 1 should fail")
	}
}

func TestTCComposition(t *testing.T) {
	tc, err := TC(siPoint(), PaperScenario(), 24)
	if err != nil {
		t.Fatal(err)
	}
	// 9.714 mW × 2h/day × 24 months at 380 g/kWh.
	onHours := 24 * units.HoursPerMonth / 12
	wantOp := 9.714e-3 * onHours * 380 / 1000
	if !almostEqual(tc.Operational.Grams(), wantOp, 1e-9) {
		t.Errorf("operational = %v g, want %v", tc.Operational.Grams(), wantOp)
	}
	if tc.Embodied.Grams() != 3.26 {
		t.Errorf("embodied = %v, want 3.26", tc.Embodied.Grams())
	}
}

// TestFig5Crossovers checks the paper's Fig. 5 structure: embodied carbon
// dominates until ≈14 months (all-Si) and ≈19 months (M3D).
func TestFig5Crossovers(t *testing.T) {
	s := PaperScenario()
	si, err := EmbodiedOperationalCrossover(siPoint(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(float64(si), 14, 0.06) {
		t.Errorf("all-Si embodied/operational crossover = %.1f months, want ≈14", float64(si))
	}
	m3d, err := EmbodiedOperationalCrossover(m3dPoint(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(float64(m3d), 19, 0.06) {
		t.Errorf("M3D embodied/operational crossover = %.1f months, want ≈19", float64(m3d))
	}
}

// TestFig5DesignCrossover checks that the two designs' tC curves cross:
// before the crossover the M3D design emits more in total, afterwards the
// all-Si design does. (The Table II-consistent numbers place it near 18
// months — see EXPERIMENTS.md for the tension with the prose's "11
// months".)
func TestFig5DesignCrossover(t *testing.T) {
	s := PaperScenario()
	m, err := DesignCrossover(siPoint(), m3dPoint(), s)
	if err != nil {
		t.Fatal(err)
	}
	if float64(m) < 15 || float64(m) > 21 {
		t.Errorf("design crossover = %.1f months, want ≈18", float64(m))
	}
	// Verify the ordering flips around the crossover.
	before, err := TC(m3dPoint(), s, m-2)
	if err != nil {
		t.Fatal(err)
	}
	beforeSi, err := TC(siPoint(), s, m-2)
	if err != nil {
		t.Fatal(err)
	}
	if before.TC() <= beforeSi.TC() {
		t.Error("before the crossover the M3D design should emit more")
	}
	after, _ := TC(m3dPoint(), s, m+2)
	afterSi, _ := TC(siPoint(), s, m+2)
	if after.TC() >= afterSi.TC() {
		t.Error("after the crossover the all-Si design should emit more")
	}
}

// TestHeadline24MonthRatio checks the paper's headline: at a 24-month
// lifetime the M3D design is 1.02× more carbon-efficient.
func TestHeadline24MonthRatio(t *testing.T) {
	r, err := Ratio(siPoint(), m3dPoint(), PaperScenario(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1.02, 0.005) {
		t.Errorf("tCDP(all-Si)/tCDP(M3D) at 24 months = %.4f, want 1.02", r)
	}
}

// TestLongLifetimeConvergesToEDP checks Fig. 5's annotation: the tCDP
// ratio converges to the energy(-delay-product) ratio as operational
// carbon dominates.
func TestLongLifetimeConvergesToEDP(t *testing.T) {
	s := PaperScenario()
	r, err := Ratio(siPoint(), m3dPoint(), s, 1200) // 100 years
	if err != nil {
		t.Fatal(err)
	}
	edp := 9.714 / 8.443 // same exec time → power ratio
	if !almostEqual(r, edp, 0.01) {
		t.Errorf("asymptotic ratio %.4f, want EDP ratio %.4f", r, edp)
	}
}

func TestLifetimeSeries(t *testing.T) {
	s := PaperScenario()
	series, err := Lifetime(siPoint(), s, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Months) != 24 {
		t.Fatalf("series has %d points, want 24", len(series.Months))
	}
	for i := range series.Months {
		if series.Embodied[i] != 3.26 {
			t.Fatal("embodied component must be constant")
		}
		if i > 0 && series.Operational[i] <= series.Operational[i-1] {
			t.Fatal("operational component must grow")
		}
		if !almostEqual(series.TCSeries[i], series.Embodied[i]+series.Operational[i], 1e-12) {
			t.Fatal("tC must be the sum of components")
		}
		if !almostEqual(series.TCDPSeries[i], series.TCSeries[i]*siPoint().ExecTime, 1e-12) {
			t.Fatal("tCDP must be tC × exec time")
		}
	}
	if _, err := Lifetime(siPoint(), s, 0); err == nil {
		t.Error("zero months should fail")
	}
}

func TestIsolineTiesTheDesigns(t *testing.T) {
	s := PaperScenario()
	iso, err := Isoline(m3dPoint(), siPoint(), s, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Along the isoline the scaled M3D tCDP equals the all-Si tCDP.
	base, err := TCDP(siPoint(), s, 24)
	if err != nil {
		t.Fatal(err)
	}
	embM3D, err := TC(m3dPoint(), s, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []float64{0.5, 0.8, 1.0, 1.2} {
		x := iso(y)
		scaled := (x*embM3D.Embodied.Grams() + y*embM3D.Operational.Grams()) * m3dPoint().ExecTime
		if !almostEqual(scaled, base, 1e-9) {
			t.Errorf("isoline at y=%v: scaled tCDP %v != all-Si %v", y, scaled, base)
		}
	}
	// At baseline scales (1, 1) the M3D design wins slightly (ratio 1.02),
	// so the tie requires making its embodied carbon a bit worse: x > 1.
	if x := iso(1.0); x <= 1.0 {
		t.Errorf("isoline at y=1 gives x=%v, want > 1", x)
	}
}

func TestRatioMapStructure(t *testing.T) {
	s := PaperScenario()
	embScales := []float64{0.5, 1.0, 1.5, 2.0}
	opScales := []float64{0.5, 1.0, 1.5}
	m, err := Map(m3dPoint(), siPoint(), s, 24, embScales, opScales)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benefit) != len(opScales) || len(m.Benefit[0]) != len(embScales) {
		t.Fatal("map dimensions wrong")
	}
	// Benefit decreases along +x (more embodied) and along +y (more
	// operational energy).
	for i := range opScales {
		for j := 1; j < len(embScales); j++ {
			if m.Benefit[i][j] >= m.Benefit[i][j-1] {
				t.Fatal("benefit must fall as embodied scale grows")
			}
		}
	}
	for j := range embScales {
		for i := 1; i < len(opScales); i++ {
			if m.Benefit[i][j] >= m.Benefit[i-1][j] {
				t.Fatal("benefit must fall as operational scale grows")
			}
		}
	}
	// Baseline point (x=1, y=1) reproduces the 1.02 headline.
	if !almostEqual(m.Benefit[1][1], 1.02, 0.005) {
		t.Errorf("benefit at (1,1) = %.4f, want 1.02", m.Benefit[1][1])
	}
	if _, err := Map(m3dPoint(), siPoint(), s, 24, nil, opScales); err == nil {
		t.Error("empty grid should fail")
	}
	if _, err := Map(m3dPoint(), siPoint(), s, 24, []float64{-1}, []float64{1}); err == nil {
		t.Error("negative scale should fail")
	}
}

// TestFig6bUncertaintyDirections checks the isoline moves the way the
// paper describes: longer lifetime, dirtier grid, or better M3D yield all
// expand the region where the M3D design wins (larger x at fixed y).
func TestFig6bUncertaintyDirections(t *testing.T) {
	s := PaperScenario()
	vars, err := UncertaintySet(m3dPoint(), siPoint(), s, 24)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]func(float64) float64{}
	for _, v := range vars {
		byName[v.Name] = v.Isoline
	}
	wantNames := []string{
		"baseline", "lifetime +6 months", "lifetime -6 months",
		"CI_use ×3", "CI_use ÷3", "M3D yield 10%", "M3D yield 90%",
	}
	for _, n := range wantNames {
		if byName[n] == nil {
			t.Fatalf("missing variant %q", n)
		}
	}
	base := byName["baseline"](1.0)
	if byName["lifetime +6 months"](1.0) <= base {
		t.Error("longer lifetime should favour the M3D design")
	}
	if byName["lifetime -6 months"](1.0) >= base {
		t.Error("shorter lifetime should disfavour the M3D design")
	}
	if byName["CI_use ×3"](1.0) <= base {
		t.Error("dirtier use-phase grid should favour the M3D design")
	}
	if byName["CI_use ÷3"](1.0) >= base {
		t.Error("cleaner use-phase grid should disfavour the M3D design")
	}
	if byName["M3D yield 90%"](1.0) <= base {
		t.Error("better M3D yield should favour the M3D design")
	}
	if byName["M3D yield 10%"](1.0) >= base {
		t.Error("worse M3D yield should disfavour the M3D design")
	}
}

func TestDesignCrossoverErrors(t *testing.T) {
	s := PaperScenario()
	if _, err := DesignCrossover(siPoint(), siPoint(), s); err == nil {
		t.Error("identical designs never cross")
	}
	// A design worse on both axes never crosses.
	worse := siPoint()
	worse.Embodied = units.GramsCO2e(10)
	worse.Power = units.Milliwatts(20)
	if _, err := DesignCrossover(siPoint(), worse, s); err == nil {
		t.Error("dominated design should not cross")
	}
}

// Property: tCDP is monotone in lifetime for any valid point.
func TestTCDPMonotoneInLifetime(t *testing.T) {
	s := PaperScenario()
	f := func(e, p uint8, m1, m2 uint8) bool {
		d := DesignPoint{
			Name:     "q",
			Embodied: units.GramsCO2e(float64(e%50) + 0.5),
			Power:    units.Milliwatts(float64(p%100)/10 + 0.1),
			ExecTime: 0.04,
			Yield:    0.9,
		}
		a := units.Months(m1%60 + 1)
		b := units.Months(m2%60 + 1)
		if a > b {
			a, b = b, a
		}
		ta, err1 := TCDP(d, s, a)
		tb, err2 := TCDP(d, s, b)
		return err1 == nil && err2 == nil && tb >= ta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling CI_use scales operational carbon exactly.
func TestScaledProfileLinearity(t *testing.T) {
	base := carbon.Flat(carbon.GridUS)
	s := PaperScenario()
	s3 := s
	s3.Profile = carbon.Scaled(base, 3)
	d := siPoint()
	tc1, err := TC(d, s, 24)
	if err != nil {
		t.Fatal(err)
	}
	tc3, err := TC(d, s3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tc3.Operational.Grams(), 3*tc1.Operational.Grams(), 1e-9) {
		t.Errorf("×3 profile: %v vs 3×%v", tc3.Operational.Grams(), tc1.Operational.Grams())
	}
}
