package tcdp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Point.
	if Point(3.5).Sample(r) != 3.5 {
		t.Error("point distribution must return its value")
	}
	// Uniform stays in range and covers it.
	u := Uniform{Lo: 2, Hi: 4}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		v := u.Sample(r)
		if v < 2 || v > 4 {
			t.Fatalf("uniform sample %v out of range", v)
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo > 2.1 || hi < 3.9 {
		t.Errorf("uniform coverage poor: [%v, %v]", lo, hi)
	}
	// LogUniform median ≈ geometric mean of bounds.
	lu := LogUniform{Lo: 1.0 / 3, Hi: 3}
	var samples []float64
	for i := 0; i < 4000; i++ {
		v := lu.Sample(r)
		if v < 1.0/3-1e-9 || v > 3+1e-9 {
			t.Fatalf("loguniform sample %v out of range", v)
		}
		samples = append(samples, v)
	}
	var logSum float64
	for _, v := range samples {
		logSum += math.Log(v)
	}
	if gm := math.Exp(logSum / float64(len(samples))); math.Abs(gm-1) > 0.05 {
		t.Errorf("loguniform geometric mean = %v, want ≈1", gm)
	}
	// Triangular respects bounds and mode-side asymmetry.
	tr := Triangular{Lo: 0.8, Mode: 1.0, Hi: 1.2}
	var mean float64
	for i := 0; i < 4000; i++ {
		v := tr.Sample(r)
		if v < 0.8-1e-9 || v > 1.2+1e-9 {
			t.Fatalf("triangular sample %v out of range", v)
		}
		mean += v
	}
	mean /= 4000
	if math.Abs(mean-1.0) > 0.01 {
		t.Errorf("triangular mean = %v, want ≈1.0", mean)
	}
	// Strings are descriptive.
	for _, d := range []Distribution{Point(1), u, lu, tr} {
		if d.String() == "" {
			t.Error("empty distribution description")
		}
	}
}

func TestMonteCarloBaseline(t *testing.T) {
	res, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), PaperUncertainty(), 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 5000 {
		t.Errorf("samples = %d", res.Samples)
	}
	// At baseline the designs are within 2% of each other, and yield
	// uncertainty (10-90% vs the 50% baseline) cuts both ways — the win
	// probability must land strictly between the extremes.
	if res.WinProbability <= 0.2 || res.WinProbability >= 0.9 {
		t.Errorf("win probability = %.3f, want a genuinely uncertain verdict", res.WinProbability)
	}
	// Quantiles are ordered.
	q := res.RatioQuantiles
	if !(q[0.05] <= q[0.25] && q[0.25] <= q[0.50] && q[0.50] <= q[0.75] && q[0.75] <= q[0.95]) {
		t.Errorf("quantiles not ordered: %v", q)
	}
	if out := res.Format(); !strings.Contains(out, "P[M3D more carbon-efficient]") {
		t.Error("format missing headline")
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	a, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), PaperUncertainty(), 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), PaperUncertainty(), 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.WinProbability != b.WinProbability || a.MeanRatio != b.MeanRatio {
		t.Error("same seed must reproduce identical results")
	}
	c, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), PaperUncertainty(), 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRatio == c.MeanRatio {
		t.Error("different seeds should differ")
	}
}

func TestMonteCarloDegenerateModel(t *testing.T) {
	// With every parameter pinned to its baseline, the ratio collapses to
	// the deterministic 24-month headline (≈1.02).
	model := UncertaintyModel{
		LifetimeMonths:   Point(24),
		CIUseScale:       Point(1),
		M3DYield:         Point(0.50),
		M3DEmbodiedScale: Point(1),
	}
	res, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), model, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanRatio-1.02) > 0.01 {
		t.Errorf("degenerate mean ratio = %.4f, want ≈1.02", res.MeanRatio)
	}
	if res.WinProbability != 1 {
		t.Errorf("deterministic M3D win expected, got %.2f", res.WinProbability)
	}
}

func TestMonteCarloYieldSensitivity(t *testing.T) {
	// Pinning yield low must hurt the M3D design; pinning high must help.
	base := UncertaintyModel{
		LifetimeMonths: Point(24), CIUseScale: Point(1), M3DEmbodiedScale: Point(1),
	}
	low := base
	low.M3DYield = Point(0.10)
	high := base
	high.M3DYield = Point(0.90)
	rLow, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), low, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), high, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(rLow.MeanRatio < 1 && rHigh.MeanRatio > rLow.MeanRatio) {
		t.Errorf("yield sensitivity wrong: low %.3f, high %.3f", rLow.MeanRatio, rHigh.MeanRatio)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), PaperUncertainty(), 0, 1); err == nil {
		t.Error("zero samples should fail")
	}
	if _, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), UncertaintyModel{}, 10, 1); err == nil {
		t.Error("empty model should fail")
	}
	bad := PaperUncertainty()
	bad.M3DYield = Point(1.5)
	if _, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), bad, 10, 1); err == nil {
		t.Error("out-of-range yield should fail")
	}
	bad = PaperUncertainty()
	bad.LifetimeMonths = Point(-1)
	if _, err := MonteCarlo(m3dPoint(), siPoint(), PaperScenario(), bad, 10, 1); err == nil {
		t.Error("negative lifetime should fail")
	}
}
