package tcdp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ppatc/internal/carbon"
	"ppatc/internal/units"
)

// Monte Carlo robustness analysis — the quantitative companion to
// Fig. 6b's isoline variants. The paper argues that designers can compare
// tCDP robustly "given underlying uncertainty in C_embodied, system
// lifetime, carbon intensity, and yield"; this sampler turns the
// qualitative bands into a win probability with confidence intervals.

// Distribution is a one-dimensional sampling distribution.
type Distribution interface {
	// Sample draws one value.
	Sample(r *rand.Rand) float64
	// String describes the distribution for reports.
	String() string
}

// Point is a degenerate distribution that always yields the same value —
// the way to hold one uncertain parameter fixed while others vary.
type Point float64

// Sample implements Distribution.
func (p Point) Sample(*rand.Rand) float64 { return float64(p) }

// String implements Distribution.
func (p Point) String() string { return fmt.Sprintf("point(%g)", float64(p)) }

// Uniform samples uniformly on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Distribution.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// String implements Distribution.
func (u Uniform) String() string { return fmt.Sprintf("uniform[%g, %g]", u.Lo, u.Hi) }

// LogUniform samples log-uniformly on [Lo, Hi] — the right shape for
// multiplicative uncertainties like "CI_use within 3× either way".
type LogUniform struct{ Lo, Hi float64 }

// Sample implements Distribution.
func (u LogUniform) Sample(r *rand.Rand) float64 {
	return u.Lo * math.Exp(r.Float64()*math.Log(u.Hi/u.Lo))
}

// String implements Distribution.
func (u LogUniform) String() string { return fmt.Sprintf("loguniform[%g, %g]", u.Lo, u.Hi) }

// Triangular samples a triangular distribution with the given mode.
type Triangular struct{ Lo, Mode, Hi float64 }

// Sample implements Distribution.
func (t Triangular) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	f := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if u < f {
		return t.Lo + math.Sqrt(u*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-u)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

// String implements Distribution.
func (t Triangular) String() string {
	return fmt.Sprintf("triangular[%g, %g, %g]", t.Lo, t.Mode, t.Hi)
}

// UncertaintyModel describes the sampled parameters. Scales multiply the
// corresponding baseline quantity; lifetime is sampled in months.
type UncertaintyModel struct {
	// LifetimeMonths samples the system lifetime.
	LifetimeMonths Distribution
	// CIUseScale scales the use-phase carbon intensity (both designs).
	CIUseScale Distribution
	// M3DYield samples the M3D yield (re-amortizing embodied carbon);
	// the all-Si yield is held at its baseline.
	M3DYield Distribution
	// M3DEmbodiedScale scales the M3D per-wafer embodied carbon (model
	// uncertainty in the fabrication-energy accounting).
	M3DEmbodiedScale Distribution
}

// PaperUncertainty mirrors Fig. 6b's ranges: lifetime 24 ± 6 months,
// CI_use within 3× either way, M3D yield 10-90%, and ±20% model
// uncertainty on the M3D embodied carbon.
func PaperUncertainty() UncertaintyModel {
	return UncertaintyModel{
		LifetimeMonths:   Uniform{Lo: 18, Hi: 30},
		CIUseScale:       LogUniform{Lo: 1.0 / 3, Hi: 3},
		M3DYield:         Uniform{Lo: 0.10, Hi: 0.90},
		M3DEmbodiedScale: Triangular{Lo: 0.8, Mode: 1.0, Hi: 1.2},
	}
}

// Validate checks every distribution is present.
func (m UncertaintyModel) Validate() error {
	if m.LifetimeMonths == nil || m.CIUseScale == nil || m.M3DYield == nil || m.M3DEmbodiedScale == nil {
		return errors.New("tcdp: uncertainty model must populate every distribution")
	}
	return nil
}

// MonteCarloResult summarizes the sampled tCDP comparison.
type MonteCarloResult struct {
	// Samples is the number of draws.
	Samples int
	// WinProbability is P[tCDP(M3D) < tCDP(all-Si)].
	WinProbability float64
	// RatioQuantiles maps quantile → tCDP(all-Si)/tCDP(M3D).
	RatioQuantiles map[float64]float64
	// MeanRatio is the average benefit ratio.
	MeanRatio float64
}

// MonteCarlo samples the uncertainty model n times with a deterministic
// seed and reports how often the M3D design stays more carbon-efficient.
func MonteCarlo(m3d, allSi DesignPoint, s Scenario, model UncertaintyModel, n int, seed int64) (*MonteCarloResult, error) {
	if n <= 0 {
		return nil, errors.New("tcdp: need a positive sample count")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := m3d.Validate(); err != nil {
		return nil, err
	}
	if err := allSi.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	ratios := make([]float64, 0, n)
	wins := 0
	for i := 0; i < n; i++ {
		life := units.Months(model.LifetimeMonths.Sample(r))
		if life <= 0 {
			return nil, errors.New("tcdp: sampled lifetime must be positive")
		}
		ciScale := model.CIUseScale.Sample(r)
		yieldM3D := model.M3DYield.Sample(r)
		embScale := model.M3DEmbodiedScale.Sample(r)
		if ciScale <= 0 || yieldM3D <= 0 || yieldM3D > 1 || embScale <= 0 {
			return nil, errors.New("tcdp: sampled parameters out of range")
		}

		sc := s
		sc.Profile = carbon.Scaled(s.Profile, ciScale)

		m3dVar := m3d
		m3dVar.Embodied = units.Carbon(m3d.Embodied.Grams() * embScale * m3d.Yield / yieldM3D)
		m3dVar.Yield = yieldM3D

		tSi, err := TCDP(allSi, sc, life)
		if err != nil {
			return nil, err
		}
		tM3D, err := TCDP(m3dVar, sc, life)
		if err != nil {
			return nil, err
		}
		ratio := tSi / tM3D
		ratios = append(ratios, ratio)
		if ratio > 1 {
			wins++
		}
	}
	sort.Float64s(ratios)
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(ratios)-1))
		return ratios[idx]
	}
	var sum float64
	for _, v := range ratios {
		sum += v
	}
	return &MonteCarloResult{
		Samples:        n,
		WinProbability: float64(wins) / float64(n),
		RatioQuantiles: map[float64]float64{
			0.05: quantile(0.05),
			0.25: quantile(0.25),
			0.50: quantile(0.50),
			0.75: quantile(0.75),
			0.95: quantile(0.95),
		},
		MeanRatio: sum / float64(n),
	}, nil
}

// Format renders the result as a small report.
func (r *MonteCarloResult) Format() string {
	return fmt.Sprintf(
		"samples: %d\nP[M3D more carbon-efficient]: %.1f%%\n"+
			"tCDP benefit ratio quantiles: p5 %.3f, p25 %.3f, median %.3f, p75 %.3f, p95 %.3f\n"+
			"mean ratio: %.3f\n",
		r.Samples, 100*r.WinProbability,
		r.RatioQuantiles[0.05], r.RatioQuantiles[0.25], r.RatioQuantiles[0.50],
		r.RatioQuantiles[0.75], r.RatioQuantiles[0.95], r.MeanRatio)
}
