package tcdp

import (
	"errors"

	"ppatc/internal/carbon"
	"ppatc/internal/units"
)

// Fig. 6 machinery. The x-axis scales the M3D design's embodied carbon
// (x > 1 → worse); the y-axis scales its operational energy (y < 1 →
// better). The colormap value is the relative tCDP of the M3D design vs.
// the all-Si design; the isoline is the contour where the two designs are
// equally carbon-efficient. Because tC is linear in both scales, the
// isoline is the straight line
//
//	x·C_emb(M3D) + y·C_op(M3D) = tC(all-Si),
//
// and the uncertainty variants of Fig. 6b simply move its intercepts.

// RatioMap is the Fig. 6a colormap.
type RatioMap struct {
	// EmbodiedScales is the x grid; OpScales the y grid.
	EmbodiedScales, OpScales []float64
	// Benefit[i][j] is tCDP(all-Si) / tCDP(M3D scaled by OpScales[i],
	// EmbodiedScales[j]): values above 1 mean the M3D design wins (the
	// red region of Fig. 6a).
	Benefit [][]float64
}

// Map computes the Fig. 6a colormap over the given scale grids at a fixed
// lifetime.
func Map(m3d, allSi DesignPoint, s Scenario, life units.Months, embScales, opScales []float64) (*RatioMap, error) {
	if len(embScales) == 0 || len(opScales) == 0 {
		return nil, errors.New("tcdp: empty scale grid")
	}
	base, err := TCDP(allSi, s, life)
	if err != nil {
		return nil, err
	}
	embM3D, opM3D, err := components(m3d, s, life)
	if err != nil {
		return nil, err
	}
	out := &RatioMap{EmbodiedScales: embScales, OpScales: opScales}
	for _, y := range opScales {
		row := make([]float64, 0, len(embScales))
		for _, x := range embScales {
			if x <= 0 || y <= 0 {
				return nil, errors.New("tcdp: scales must be positive")
			}
			scaled := (x*embM3D + y*opM3D) * m3d.ExecTime
			row = append(row, base/scaled)
		}
		out.Benefit = append(out.Benefit, row)
	}
	return out, nil
}

// components reports the embodied and operational gram totals of a point.
func components(d DesignPoint, s Scenario, life units.Months) (emb, op float64, err error) {
	tc, err := TC(d, s, life)
	if err != nil {
		return 0, 0, err
	}
	return tc.Embodied.Grams(), tc.Operational.Grams(), nil
}

// Isoline reports the embodied-carbon scale x at which the two designs tie
// for a given operational-energy scale y (the dashed line of Fig. 6a):
//
//	x(y) = (tC(all-Si) − y·C_op(M3D)) / C_emb(M3D).
//
// Negative results mean no positive embodied scale can tie at that y (the
// M3D design loses even with free fabrication).
func Isoline(m3d, allSi DesignPoint, s Scenario, life units.Months) (func(opScale float64) float64, error) {
	tcSi, err := TC(allSi, s, life)
	if err != nil {
		return nil, err
	}
	embM3D, opM3D, err := components(m3d, s, life)
	if err != nil {
		return nil, err
	}
	target := tcSi.TC().Grams()
	return func(y float64) float64 {
		return (target - y*opM3D) / embM3D
	}, nil
}

// Variant names one Fig. 6b perturbation and its isoline.
type Variant struct {
	// Name describes the perturbation ("lifetime +6 months", ...).
	Name string
	// Isoline is the perturbed x(y) function.
	Isoline func(opScale float64) float64
}

// UncertaintySet computes the Fig. 6b isoline family: the baseline plus
// lifetime ±6 months, CI_use ×3 and ÷3, and M3D yield 10% and 90%.
func UncertaintySet(m3d, allSi DesignPoint, s Scenario, life units.Months) ([]Variant, error) {
	var out []Variant
	add := func(name string, m3dV, siV DesignPoint, sc Scenario, lf units.Months) error {
		iso, err := Isoline(m3dV, siV, sc, lf)
		if err != nil {
			return err
		}
		out = append(out, Variant{Name: name, Isoline: iso})
		return nil
	}
	if err := add("baseline", m3d, allSi, s, life); err != nil {
		return nil, err
	}
	// Lifetime ±6 months (red dashed lines in Fig. 6b).
	for _, d := range []float64{+6, -6} {
		lf := life + units.Months(d)
		if lf <= 0 {
			return nil, errors.New("tcdp: perturbed lifetime must be positive")
		}
		name := "lifetime +6 months"
		if d < 0 {
			name = "lifetime -6 months"
		}
		if err := add(name, m3d, allSi, s, lf); err != nil {
			return nil, err
		}
	}
	// CI_use ×3 and ÷3 (green dashed lines): scale both designs'
	// operational carbon through the profile.
	for _, f := range []float64{3, 1.0 / 3} {
		sc := s
		sc.Profile = carbon.Scaled(s.Profile, f)
		name := "CI_use ×3"
		if f < 1 {
			name = "CI_use ÷3"
		}
		if err := add(name, m3d, allSi, sc, life); err != nil {
			return nil, err
		}
	}
	// M3D yield 10% and 90% (purple dashed lines): re-amortize the M3D
	// embodied carbon.
	for _, y := range []float64{0.10, 0.90} {
		v := m3d
		v.Embodied = units.Carbon(m3d.Embodied.Grams() * m3d.Yield / y)
		v.Yield = y
		name := "M3D yield 10%"
		if y > 0.5 {
			name = "M3D yield 90%"
		}
		if err := add(name, v, allSi, s, life); err != nil {
			return nil, err
		}
	}
	return out, nil
}
