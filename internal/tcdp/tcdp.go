// Package tcdp implements the carbon-efficiency analyses of the paper's
// Sec. III-C/D: total carbon (tC) versus system lifetime (Fig. 5), the
// total-carbon-delay-product metric tCDP = tC × application execution time,
// the tCDP isoline separating regimes where the M3D or the all-Si design is
// more carbon-efficient (Fig. 6a), and the isoline's sensitivity to
// uncertainty in lifetime, use-phase carbon intensity and yield (Fig. 6b).
package tcdp

import (
	"errors"
	"fmt"

	"ppatc/internal/carbon"
	"ppatc/internal/units"
)

// DesignPoint is the lifetime-analysis summary of one evaluated system.
type DesignPoint struct {
	// Name identifies the design.
	Name string
	// Embodied is the per-good-die embodied carbon.
	Embodied units.Carbon
	// Power is the operational power while running.
	Power units.Power
	// ExecTime is the application execution time in seconds (cycles/f).
	ExecTime float64
	// Yield is the die yield behind Embodied, kept so uncertainty
	// analyses can re-amortize under different yields.
	Yield float64
}

// Validate checks the point.
func (d DesignPoint) Validate() error {
	switch {
	case d.Embodied <= 0:
		return fmt.Errorf("tcdp %s: embodied carbon must be positive", d.Name)
	case d.Power <= 0:
		return fmt.Errorf("tcdp %s: power must be positive", d.Name)
	case d.ExecTime <= 0:
		return fmt.Errorf("tcdp %s: execution time must be positive", d.Name)
	case d.Yield <= 0 || d.Yield > 1:
		return fmt.Errorf("tcdp %s: yield must be in (0, 1]", d.Name)
	}
	return nil
}

// Scenario fixes the usage pattern shape and CI_use profile; the lifetime
// is supplied per query so a single scenario sweeps Fig. 5's x-axis.
type Scenario struct {
	// StartHour and HoursPerDay define the daily usage window.
	StartHour, HoursPerDay float64
	// Profile is the CI_use(t) shape.
	Profile carbon.Profile
}

// PaperScenario is the case study's scenario: 2 hours per day from 8 pm on
// the (flat) US grid.
func PaperScenario() Scenario {
	return Scenario{StartHour: 20, HoursPerDay: 2, Profile: carbon.Flat(carbon.GridUS)}
}

// usage builds the carbon.UsagePattern for a lifetime.
func (s Scenario) usage(life units.Months) carbon.UsagePattern {
	return carbon.UsagePattern{StartHour: s.StartHour, HoursPerDay: s.HoursPerDay, Lifetime: life}
}

// TC evaluates the total carbon of a design point at the given lifetime.
func TC(d DesignPoint, s Scenario, life units.Months) (carbon.Total, error) {
	if err := d.Validate(); err != nil {
		return carbon.Total{}, err
	}
	op, err := carbon.Operational(d.Power, s.usage(life), s.Profile)
	if err != nil {
		return carbon.Total{}, err
	}
	return carbon.Total{Embodied: d.Embodied, Operational: op}, nil
}

// TCDP evaluates the total-carbon-delay product at the given lifetime, in
// gCO2e·s (equivalently gCO2e/Hz at fixed cycle count, the paper's unit).
func TCDP(d DesignPoint, s Scenario, life units.Months) (float64, error) {
	tc, err := TC(d, s, life)
	if err != nil {
		return 0, err
	}
	return tc.TC().Grams() * d.ExecTime, nil
}

// Series is the per-month trace behind Fig. 5.
type Series struct {
	// Name echoes the design.
	Name string
	// Months are the sample lifetimes (1..N).
	Months []float64
	// Embodied, Operational and TCSeries are in gCO2e; TCDPSeries is in
	// gCO2e·s.
	Embodied, Operational, TCSeries, TCDPSeries []float64
}

// Lifetime computes the Fig. 5 series for a design over 1..maxMonths.
func Lifetime(d DesignPoint, s Scenario, maxMonths int) (Series, error) {
	if maxMonths <= 0 {
		return Series{}, errors.New("tcdp: need a positive month count")
	}
	out := Series{Name: d.Name}
	for m := 1; m <= maxMonths; m++ {
		tc, err := TC(d, s, units.Months(m))
		if err != nil {
			return Series{}, err
		}
		tcdp, err := TCDP(d, s, units.Months(m))
		if err != nil {
			return Series{}, err
		}
		out.Months = append(out.Months, float64(m))
		out.Embodied = append(out.Embodied, tc.Embodied.Grams())
		out.Operational = append(out.Operational, tc.Operational.Grams())
		out.TCSeries = append(out.TCSeries, tc.TC().Grams())
		out.TCDPSeries = append(out.TCDPSeries, tcdp)
	}
	return out, nil
}

// operationalRate reports the operational carbon per month of a design
// under a scenario (grams/month); the closed form of Eq. 8 is linear in
// lifetime, so the rate is constant.
func operationalRate(d DesignPoint, s Scenario) (float64, error) {
	tc, err := TC(d, s, 1)
	if err != nil {
		return 0, err
	}
	return tc.Operational.Grams(), nil
}

// EmbodiedOperationalCrossover reports the lifetime (months) at which the
// operational carbon overtakes the embodied carbon — 14 months for the
// all-Si design and 19 for the M3D design in Fig. 5.
func EmbodiedOperationalCrossover(d DesignPoint, s Scenario) (units.Months, error) {
	rate, err := operationalRate(d, s)
	if err != nil {
		return 0, err
	}
	if rate <= 0 {
		return 0, errors.New("tcdp: operational rate must be positive")
	}
	return units.Months(d.Embodied.Grams() / rate), nil
}

// DesignCrossover reports the lifetime at which two designs' total carbon
// curves intersect. It returns an error when the curves never cross (one
// design dominates at every lifetime).
func DesignCrossover(a, b DesignPoint, s Scenario) (units.Months, error) {
	ra, err := operationalRate(a, s)
	if err != nil {
		return 0, err
	}
	rb, err := operationalRate(b, s)
	if err != nil {
		return 0, err
	}
	dEmb := b.Embodied.Grams() - a.Embodied.Grams()
	dRate := ra - rb
	if dRate == 0 {
		return 0, errors.New("tcdp: identical operational rates never cross")
	}
	m := dEmb / dRate
	if m <= 0 {
		return 0, errors.New("tcdp: curves do not cross at a positive lifetime")
	}
	return units.Months(m), nil
}

// Ratio reports tCDP(a)/tCDP(b) at a lifetime — the "M3D is 1.02× more
// carbon-efficient" headline is Ratio(allSi, m3d, s, 24).
func Ratio(a, b DesignPoint, s Scenario, life units.Months) (float64, error) {
	ta, err := TCDP(a, s, life)
	if err != nil {
		return 0, err
	}
	tb, err := TCDP(b, s, life)
	if err != nil {
		return 0, err
	}
	if tb == 0 {
		return 0, errors.New("tcdp: zero denominator")
	}
	return ta / tb, nil
}
