// Package units defines the physical quantities used throughout the PPAtC
// framework: energy, power, carbon mass, carbon intensity, length, area and
// time spans. Each quantity is a defined float64 type carried in a single SI
// base unit, with constructors and accessors for the unit scales that appear
// in the paper (pJ, kWh, gCO2e, gCO2e/kWh, nm, mm², months, ...).
//
// Using defined types instead of bare float64 makes unit errors a compile
// failure: an Energy cannot be passed where a Power is expected, and the
// conversion points (Energy.Per, Power.Times, CarbonIntensity.Apply) are the
// only places where dimensions combine.
package units

import (
	"fmt"
	"math"
	"time"
)

// Energy is an amount of energy, stored in joules.
type Energy float64

// Energy constructors.
func Joules(j float64) Energy          { return Energy(j) }
func Picojoules(pj float64) Energy     { return Energy(pj * 1e-12) }
func Nanojoules(nj float64) Energy     { return Energy(nj * 1e-9) }
func Microjoules(uj float64) Energy    { return Energy(uj * 1e-6) }
func Millijoules(mj float64) Energy    { return Energy(mj * 1e-3) }
func WattHours(wh float64) Energy      { return Energy(wh * 3600) }
func KilowattHours(kwh float64) Energy { return Energy(kwh * 3.6e6) }

// Accessors in common scales.
func (e Energy) Joules() float64        { return float64(e) }
func (e Energy) Picojoules() float64    { return float64(e) * 1e12 }
func (e Energy) Nanojoules() float64    { return float64(e) * 1e9 }
func (e Energy) WattHours() float64     { return float64(e) / 3600 }
func (e Energy) KilowattHours() float64 { return float64(e) / 3.6e6 }

// Per returns the average power of spending e over span d.
func (e Energy) Per(d time.Duration) Power {
	return Power(float64(e) / d.Seconds())
}

// String renders the energy with an auto-selected SI prefix.
func (e Energy) String() string { return siString(float64(e), "J") }

// Power is an energy rate, stored in watts.
type Power float64

// Power constructors.
func Watts(w float64) Power       { return Power(w) }
func Milliwatts(mw float64) Power { return Power(mw * 1e-3) }
func Microwatts(uw float64) Power { return Power(uw * 1e-6) }
func Nanowatts(nw float64) Power  { return Power(nw * 1e-9) }

// Accessors in common scales.
func (p Power) Watts() float64      { return float64(p) }
func (p Power) Milliwatts() float64 { return float64(p) * 1e3 }
func (p Power) Microwatts() float64 { return float64(p) * 1e6 }

// Times returns the energy consumed by running at power p for span d.
func (p Power) Times(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// String renders the power with an auto-selected SI prefix.
func (p Power) String() string { return siString(float64(p), "W") }

// Carbon is a mass of CO2-equivalent emissions, stored in grams CO2e.
type Carbon float64

// Carbon constructors.
func GramsCO2e(g float64) Carbon      { return Carbon(g) }
func KilogramsCO2e(kg float64) Carbon { return Carbon(kg * 1e3) }
func TonnesCO2e(t float64) Carbon     { return Carbon(t * 1e6) }

// Accessors in common scales.
func (c Carbon) Grams() float64     { return float64(c) }
func (c Carbon) Kilograms() float64 { return float64(c) / 1e3 }
func (c Carbon) Tonnes() float64    { return float64(c) / 1e6 }

// String renders the carbon mass in grams or kilograms CO2e.
func (c Carbon) String() string {
	g := float64(c)
	switch {
	case math.Abs(g) >= 1e6:
		return fmt.Sprintf("%.4g tCO2e", g/1e6)
	case math.Abs(g) >= 1e3:
		return fmt.Sprintf("%.4g kgCO2e", g/1e3)
	default:
		return fmt.Sprintf("%.4g gCO2e", g)
	}
}

// CarbonIntensity is carbon emitted per unit of electrical energy, stored in
// grams CO2e per joule. The paper quotes intensities in gCO2e/kWh.
type CarbonIntensity float64

// GramsPerKilowattHour constructs a carbon intensity from the paper's unit.
func GramsPerKilowattHour(g float64) CarbonIntensity {
	return CarbonIntensity(g / 3.6e6)
}

// GramsPerKilowattHour reports the intensity in gCO2e/kWh.
func (ci CarbonIntensity) GramsPerKilowattHour() float64 {
	return float64(ci) * 3.6e6
}

// Apply converts an energy consumption into emitted carbon.
func (ci CarbonIntensity) Apply(e Energy) Carbon {
	return Carbon(float64(ci) * float64(e))
}

// String renders the intensity in gCO2e/kWh.
func (ci CarbonIntensity) String() string {
	return fmt.Sprintf("%.4g gCO2e/kWh", ci.GramsPerKilowattHour())
}

// Length is a physical length, stored in meters.
type Length float64

// Length constructors.
func Meters(m float64) Length       { return Length(m) }
func Millimeters(mm float64) Length { return Length(mm * 1e-3) }
func Micrometers(um float64) Length { return Length(um * 1e-6) }
func Nanometers(nm float64) Length  { return Length(nm * 1e-9) }

// Accessors in common scales.
func (l Length) Meters() float64      { return float64(l) }
func (l Length) Millimeters() float64 { return float64(l) * 1e3 }
func (l Length) Micrometers() float64 { return float64(l) * 1e6 }
func (l Length) Nanometers() float64  { return float64(l) * 1e9 }

// TimesLength returns the rectangular area l × w.
func (l Length) TimesLength(w Length) Area {
	return Area(float64(l) * float64(w))
}

// String renders the length with an auto-selected SI prefix.
func (l Length) String() string { return siString(float64(l), "m") }

// Area is a physical area, stored in square meters.
type Area float64

// Area constructors.
func SquareMeters(m2 float64) Area       { return Area(m2) }
func SquareCentimeters(cm2 float64) Area { return Area(cm2 * 1e-4) }
func SquareMillimeters(mm2 float64) Area { return Area(mm2 * 1e-6) }
func SquareMicrometers(um2 float64) Area { return Area(um2 * 1e-12) }

// Accessors in common scales.
func (a Area) SquareMeters() float64      { return float64(a) }
func (a Area) SquareCentimeters() float64 { return float64(a) * 1e4 }
func (a Area) SquareMillimeters() float64 { return float64(a) * 1e6 }
func (a Area) SquareMicrometers() float64 { return float64(a) * 1e12 }

// String renders the area in mm² or cm², matching the paper's tables.
func (a Area) String() string {
	mm2 := a.SquareMillimeters()
	if math.Abs(mm2) >= 100 {
		return fmt.Sprintf("%.4g cm²", a.SquareCentimeters())
	}
	return fmt.Sprintf("%.4g mm²", mm2)
}

// CarbonPerArea is an areal carbon density (MPA, GPA), stored in gCO2e/m².
type CarbonPerArea float64

// GramsPerSquareCentimeter constructs an areal density from the paper's unit.
func GramsPerSquareCentimeter(g float64) CarbonPerArea {
	return CarbonPerArea(g * 1e4)
}

// GramsPerSquareCentimeter reports the density in gCO2e/cm².
func (d CarbonPerArea) GramsPerSquareCentimeter() float64 {
	return float64(d) / 1e4
}

// Over converts the areal density into total carbon for area a.
func (d CarbonPerArea) Over(a Area) Carbon {
	return Carbon(float64(d) * float64(a))
}

// String renders the density in gCO2e/cm².
func (d CarbonPerArea) String() string {
	return fmt.Sprintf("%.4g gCO2e/cm²", d.GramsPerSquareCentimeter())
}

// EnergyPerArea is an areal energy density (EPA), stored in J/m².
type EnergyPerArea float64

// KilowattHoursPerSquareCentimeter constructs an EPA from kWh/cm².
func KilowattHoursPerSquareCentimeter(kwh float64) EnergyPerArea {
	return EnergyPerArea(kwh * 3.6e6 * 1e4)
}

// Over converts the areal density into total energy for area a.
func (d EnergyPerArea) Over(a Area) Energy {
	return Energy(float64(d) * float64(a))
}

// Frequency is a rate of events, stored in hertz.
type Frequency float64

// Frequency constructors.
func Hertz(hz float64) Frequency      { return Frequency(hz) }
func Megahertz(mhz float64) Frequency { return Frequency(mhz * 1e6) }
func Gigahertz(ghz float64) Frequency { return Frequency(ghz * 1e9) }

// Accessors in common scales.
func (f Frequency) Hertz() float64     { return float64(f) }
func (f Frequency) Megahertz() float64 { return float64(f) / 1e6 }

// Period returns the duration of a single cycle at frequency f.
func (f Frequency) Period() time.Duration {
	if f == 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / float64(f))
}

// PeriodSeconds returns the cycle period in seconds without the precision
// limits of time.Duration (which bottoms out at 1 ns).
func (f Frequency) PeriodSeconds() float64 {
	if f == 0 {
		return 0
	}
	return 1 / float64(f)
}

// String renders the frequency with an auto-selected SI prefix.
func (f Frequency) String() string { return siString(float64(f), "Hz") }

// siString formats v with an SI prefix chosen from its magnitude.
func siString(v float64, unit string) string {
	abs := math.Abs(v)
	type scale struct {
		factor float64
		prefix string
	}
	scales := []scale{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	if v == 0 {
		return "0 " + unit
	}
	for _, s := range scales {
		if abs >= s.factor {
			return fmt.Sprintf("%.4g %s%s", v/s.factor, s.prefix, unit)
		}
	}
	return fmt.Sprintf("%.4g %s", v, unit)
}
