package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestEnergyConversionsRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		make func(float64) Energy
		get  func(Energy) float64
	}{
		{"picojoules", Picojoules, Energy.Picojoules},
		{"nanojoules", Nanojoules, Energy.Nanojoules},
		{"watthours", WattHours, Energy.WattHours},
		{"kilowatthours", KilowattHours, Energy.KilowattHours},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, v := range []float64{0, 1, 1.42, 436, 1e6, 1e-6} {
				if got := tc.get(tc.make(v)); !almostEqual(got, v, 1e-12) {
					t.Errorf("%s round trip: put %v got %v", tc.name, v, got)
				}
			}
		})
	}
}

func TestKilowattHourDefinition(t *testing.T) {
	// 1 kWh = 3.6e6 J exactly.
	if got := KilowattHours(1).Joules(); got != 3.6e6 {
		t.Fatalf("1 kWh = %v J, want 3.6e6", got)
	}
}

func TestPowerEnergyDuality(t *testing.T) {
	p := Milliwatts(9.71)
	e := p.Times(2 * time.Hour)
	if want := 9.71e-3 * 7200; !almostEqual(e.Joules(), want, 1e-12) {
		t.Fatalf("9.71 mW over 2h = %v J, want %v", e.Joules(), want)
	}
	back := e.Per(2 * time.Hour)
	if !almostEqual(back.Watts(), p.Watts(), 1e-12) {
		t.Fatalf("round trip power: got %v want %v", back, p)
	}
}

func TestCarbonIntensityApply(t *testing.T) {
	// US grid: 380 gCO2e/kWh applied to 1 kWh must give 380 g.
	us := GramsPerKilowattHour(380)
	c := us.Apply(KilowattHours(1))
	if !almostEqual(c.Grams(), 380, 1e-12) {
		t.Fatalf("380 g/kWh × 1 kWh = %v g, want 380", c.Grams())
	}
	if !almostEqual(us.GramsPerKilowattHour(), 380, 1e-12) {
		t.Fatalf("round trip intensity: %v", us.GramsPerKilowattHour())
	}
}

func TestCarbonScales(t *testing.T) {
	c := KilogramsCO2e(837)
	if !almostEqual(c.Grams(), 837000, 1e-12) {
		t.Fatalf("837 kg = %v g", c.Grams())
	}
	if !almostEqual(c.Tonnes(), 0.837, 1e-12) {
		t.Fatalf("837 kg = %v t", c.Tonnes())
	}
	if s := c.String(); !strings.Contains(s, "kgCO2e") {
		t.Fatalf("String() = %q, want kgCO2e scale", s)
	}
}

func TestAreaConversions(t *testing.T) {
	// A 300 mm wafer: π × (150 mm)² ≈ 706.86 cm².
	r := Millimeters(150)
	a := Area(math.Pi * r.Meters() * r.Meters())
	if !almostEqual(a.SquareCentimeters(), 706.858, 1e-4) {
		t.Fatalf("wafer area = %v cm², want ≈706.86", a.SquareCentimeters())
	}
	d := Micrometers(270).TimesLength(Micrometers(515))
	if !almostEqual(d.SquareMillimeters(), 0.139, 0.01) {
		t.Fatalf("die area = %v mm², want ≈0.139", d.SquareMillimeters())
	}
}

func TestCarbonPerAreaOver(t *testing.T) {
	// MPA = 500 gCO2e/cm² over a 300 mm wafer ≈ 3.5e5 gCO2e (paper, Sec II-B).
	mpa := GramsPerSquareCentimeter(500)
	wafer := SquareCentimeters(706.858)
	got := mpa.Over(wafer).Grams()
	if !almostEqual(got, 353429, 1e-3) {
		t.Fatalf("MPA over wafer = %v g, want ≈3.53e5", got)
	}
}

func TestFrequencyPeriod(t *testing.T) {
	f := Megahertz(500)
	if got := f.PeriodSeconds(); !almostEqual(got, 2e-9, 1e-12) {
		t.Fatalf("500 MHz period = %v s, want 2e-9", got)
	}
	if got := f.Period(); got != 2*time.Nanosecond {
		t.Fatalf("500 MHz period = %v, want 2ns", got)
	}
	if Frequency(0).Period() != 0 || Frequency(0).PeriodSeconds() != 0 {
		t.Fatal("zero frequency must yield zero period")
	}
}

func TestMonths(t *testing.T) {
	if got := Months(12).Hours(); !almostEqual(got, 365.2425*24, 1e-12) {
		t.Fatalf("12 months = %v h, want one Gregorian year", got)
	}
	if got := MonthsFromHours(Months(24).Hours()); !almostEqual(float64(got), 24, 1e-12) {
		t.Fatalf("months round trip: %v", got)
	}
}

func TestSIStringSelection(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Picojoules(1.42).String(), "1.42 pJ"},
		{Milliwatts(9.71).String(), "9.71 mW"},
		{Megahertz(500).String(), "500 MHz"},
		{KilowattHours(436).String(), "1.57 GJ"},
		{Energy(0).String(), "0 J"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}

// Property: intensity application is linear in energy.
func TestCarbonIntensityLinearity(t *testing.T) {
	f := func(gPerKWh, kwh1, kwh2 float64) bool {
		gPerKWh = math.Mod(math.Abs(gPerKWh), 2000)
		kwh1 = math.Mod(math.Abs(kwh1), 1e6)
		kwh2 = math.Mod(math.Abs(kwh2), 1e6)
		ci := GramsPerKilowattHour(gPerKWh)
		sum := ci.Apply(KilowattHours(kwh1 + kwh2)).Grams()
		parts := ci.Apply(KilowattHours(kwh1)).Grams() + ci.Apply(KilowattHours(kwh2)).Grams()
		return almostEqual(sum, parts, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Power.Times and Energy.Per are inverse for positive durations.
func TestPowerEnergyInverseProperty(t *testing.T) {
	f := func(mw float64, seconds uint16) bool {
		if seconds == 0 {
			return true
		}
		mw = math.Mod(math.Abs(mw), 1e6)
		d := time.Duration(seconds) * time.Second
		p := Milliwatts(mw)
		return almostEqual(p.Times(d).Per(d).Watts(), p.Watts(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemainingConstructorsAndStrings(t *testing.T) {
	if Joules(2).Joules() != 2 {
		t.Error("Joules")
	}
	if !almostEqual(Microjoules(3).Joules(), 3e-6, 1e-12) {
		t.Error("Microjoules")
	}
	if Millijoules(4).Joules() != 4e-3 {
		t.Error("Millijoules")
	}
	if Watts(5).Watts() != 5 {
		t.Error("Watts")
	}
	if !almostEqual(Microwatts(6).Watts(), 6e-6, 1e-12) || !almostEqual(Nanowatts(7).Watts(), 7e-9, 1e-12) {
		t.Error("small powers")
	}
	if Milliwatts(8).Milliwatts() != 8 || Microwatts(9).Microwatts() != 9 {
		t.Error("power accessors")
	}
	if GramsCO2e(10).Grams() != 10 || TonnesCO2e(1).Grams() != 1e6 {
		t.Error("carbon constructors")
	}
	if KilogramsCO2e(2).Kilograms() != 2 {
		t.Error("Kilograms accessor")
	}
	if Meters(1).Meters() != 1 || !almostEqual(Nanometers(2).Meters(), 2e-9, 1e-12) {
		t.Error("lengths")
	}
	l := Millimeters(1)
	if l.Millimeters() != 1 || Micrometers(3).Micrometers() != 3 || Nanometers(4).Nanometers() != 4 {
		t.Error("length accessors")
	}
	if got := Micrometers(270).String(); got != "270 µm" {
		t.Errorf("length string = %q", got)
	}
	if got := GramsPerKilowattHour(380).String(); !strings.Contains(got, "380") {
		t.Errorf("intensity string = %q", got)
	}
	if got := GramsPerSquareCentimeter(500).String(); !strings.Contains(got, "500") {
		t.Errorf("areal string = %q", got)
	}
	if got := SquareCentimeters(707).String(); !strings.Contains(got, "cm²") {
		t.Errorf("big area string = %q", got)
	}
	if got := TonnesCO2e(2).String(); !strings.Contains(got, "tCO2e") {
		t.Errorf("tonnes string = %q", got)
	}
	if got := Months(1).Duration(); got <= 0 {
		t.Errorf("months duration = %v", got)
	}
	// EnergyPerArea helpers.
	epa := KilowattHoursPerSquareCentimeter(1)
	if got := epa.Over(SquareCentimeters(2)).KilowattHours(); math.Abs(got-2) > 1e-12 {
		t.Errorf("EPA over area = %v, want 2", got)
	}
}
