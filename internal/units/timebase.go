package units

import "time"

// Calendar conventions used by the lifetime math. The paper expresses system
// lifetime in months of wall-clock time with a duty-cycled usage window
// (e.g. 2 hours per day over 24 months). We adopt the mean Gregorian month
// so that 12 months equals exactly one 365.2425-day year.
const (
	HoursPerDay   = 24.0
	DaysPerMonth  = 365.2425 / 12.0
	HoursPerMonth = HoursPerDay * DaysPerMonth
)

// Months is a span of calendar time measured in mean Gregorian months.
type Months float64

// Hours reports the total wall-clock hours in the span.
func (m Months) Hours() float64 { return float64(m) * HoursPerMonth }

// Duration converts the span to a time.Duration.
func (m Months) Duration() time.Duration {
	return time.Duration(m.Hours() * float64(time.Hour))
}

// MonthsFromHours converts wall-clock hours into months.
func MonthsFromHours(h float64) Months { return Months(h / HoursPerMonth) }
